//! The full-information Byzantine adversary interface.
//!
//! A single [`Adversary`] value controls *all* Byzantine nodes at once —
//! the paper's adversary is a monolithic entity with "complete knowledge
//! of the entire states of all nodes at the beginning of every round". The
//! engine realizes this with a *rushing* schedule: every round, honest
//! nodes first produce their messages, then the adversary inspects the
//! complete honest states plus those in-flight messages before choosing
//! what each Byzantine node says.
//!
//! Two model restrictions are enforced mechanically:
//!
//! * **ID authenticity** — a Byzantine node's messages carry its true
//!   [`Pid`]; [`ByzantineContext::send`] stamps the sender itself.
//! * **Edge locality** — Byzantine nodes can only message actual graph
//!   neighbours.
//!
//! The paper's adversary also knows the honest nodes' *future* coin flips;
//! no implementation can offer that generically, but none of the concrete
//! strategies the proofs consider needs it (see DESIGN.md §3). What the
//! view does offer is strictly more than any real attacker has: full state
//! introspection via [`FullInfoView::honest_state`].

use bcount_graph::{Graph, NodeId};
use rand_chacha::ChaCha8Rng;

use crate::idspace::{Pid, PidIndex};
use crate::message::{Inbox, InboxesView};
use crate::protocol::Protocol;

/// Everything the adversary can observe in a round (full information).
///
/// All fields borrow the engine's own state — building the view each
/// round allocates nothing.
pub struct FullInfoView<'a, P: Protocol> {
    pub(crate) round: u64,
    pub(crate) graph: &'a Graph,
    pub(crate) pids: &'a [Pid],
    pub(crate) pid_index: &'a PidIndex,
    pub(crate) is_byzantine: &'a [bool],
    /// Honest protocol states, indexed by graph node (`None` at Byzantine
    /// slots).
    pub(crate) honest_states: &'a [Option<P>],
    /// Messages honest nodes are sending *this* round, (from, to, msg),
    /// observable before the adversary commits (rushing).
    pub(crate) honest_outgoing: &'a [(NodeId, NodeId, P::Message)],
    /// What every node received at the end of last round (the adversary
    /// sees all channels — full information), in whichever physical
    /// layout the engine selected.
    pub(crate) inboxes: InboxesView<'a, P::Message>,
}

impl<'a, P: Protocol> FullInfoView<'a, P> {
    /// Current round (1-based).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The true network topology (the adversary is omniscient).
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Protocol identity of a node.
    pub fn pid(&self, u: NodeId) -> Pid {
        self.pids[u.index()]
    }

    /// Reverse lookup of a [`Pid`] to its graph node, if it exists
    /// (binary search on the engine's dense [`PidIndex`]).
    pub fn node_of(&self, pid: Pid) -> Option<NodeId> {
        self.pid_index.node_of(pid)
    }

    /// Whether `u` is Byzantine.
    pub fn is_byzantine(&self, u: NodeId) -> bool {
        self.is_byzantine[u.index()]
    }

    /// Iterator over the Byzantine nodes.
    pub fn byzantine_nodes(&self) -> impl Iterator<Item = NodeId> + 'a {
        let byz = self.is_byzantine;
        (0..byz.len())
            .filter(move |&i| byz[i])
            .map(|i| NodeId(i as u32))
    }

    /// Full state of the honest protocol at `u`, or `None` if `u` is
    /// Byzantine or already halted-and-dropped.
    pub fn honest_state(&self, u: NodeId) -> Option<&'a P> {
        self.honest_states.get(u.index()).and_then(Option::as_ref)
    }

    /// The messages honest nodes are sending this round, visible before
    /// the adversary commits (rushing adversary).
    pub fn honest_outgoing(&self) -> &[(NodeId, NodeId, P::Message)] {
        self.honest_outgoing
    }

    /// What node `u` received at the end of the previous round, as a
    /// layout-independent [`Inbox`] view. The adversary may inspect *any*
    /// node's channel (full information); its own Byzantine nodes'
    /// inboxes are the usual use.
    pub fn inbox(&self, u: NodeId) -> Inbox<'a, P::Message> {
        self.inboxes.inbox(u.index())
    }
}

/// Outgoing-message sink for the Byzantine nodes.
///
/// The sink borrows a persistent scratch buffer owned by the engine
/// (drained each round with its capacity kept), mirroring the honest
/// nodes' zero-alloc outboxes.
pub struct ByzantineContext<'a, M> {
    pub(crate) graph: &'a Graph,
    pub(crate) is_byzantine: &'a [bool],
    pub(crate) rng: &'a mut ChaCha8Rng,
    pub(crate) outgoing: &'a mut Vec<(NodeId, NodeId, M)>,
}

impl<'a, M: Clone> ByzantineContext<'a, M> {
    /// Sends `msg` from Byzantine node `from` to its neighbour `to`.
    ///
    /// The recipient sees the *authentic* sender identity.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not Byzantine or `{from, to}` is not an edge —
    /// the model forbids both ID spoofing and out-of-band channels.
    pub fn send(&mut self, from: NodeId, to: NodeId, msg: M) {
        assert!(
            self.is_byzantine[from.index()],
            "adversary tried to send from honest node {from}"
        );
        assert!(
            self.graph.has_edge(from, to),
            "adversary tried to use non-edge {from} -> {to}"
        );
        self.outgoing.push((from, to, msg));
    }

    /// Sends `msg` from `from` to every distinct neighbour of `from`.
    ///
    /// # Panics
    ///
    /// As for [`ByzantineContext::send`].
    pub fn broadcast(&mut self, from: NodeId, msg: M) {
        assert!(
            self.is_byzantine[from.index()],
            "adversary tried to broadcast from honest node {from}"
        );
        let mut nbrs: Vec<NodeId> = self.graph.neighbors(from).collect();
        nbrs.sort_unstable();
        nbrs.dedup();
        for to in nbrs {
            self.outgoing.push((from, to, msg.clone()));
        }
    }

    /// The adversary's private randomness (for randomized strategies).
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        self.rng
    }
}

/// A Byzantine strategy controlling all Byzantine nodes.
///
/// Implementations receive the full-information [`FullInfoView`] each round
/// and emit messages through the [`ByzantineContext`].
pub trait Adversary<P: Protocol> {
    /// Chooses this round's Byzantine messages after observing the honest
    /// round (rushing).
    fn on_round(&mut self, view: &FullInfoView<'_, P>, ctx: &mut ByzantineContext<'_, P::Message>);

    /// Whether this adversary ever reads [`FullInfoView::honest_outgoing`].
    ///
    /// The default is `true` — the full rushing view, with the round's
    /// honest traffic materialized as a flat `(from, to, msg)` vector
    /// before the adversary runs. An adversary that never inspects that
    /// slice may override this to return `false`, which licenses the
    /// engine to **fuse** the merge with the delivery scatter and skip
    /// building the flat vector entirely (the slice the view exposes is
    /// then empty). Everything else in the view (honest states, inboxes,
    /// pids, topology) is unaffected.
    ///
    /// Contract: return `false` **only if** `on_round` never calls
    /// [`FullInfoView::honest_outgoing`]. The engine trusts this
    /// declaration; `crates/sim/tests/adversary_view.rs` pins the inverse
    /// guarantee (observing adversaries always get the flat vector, even
    /// when fusion is requested).
    fn observes_traffic(&self) -> bool {
        true
    }
}

/// The benign adversary: Byzantine nodes stay silent forever.
///
/// Useful both as the no-fault baseline and as the "crash from the start"
/// failure mode.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullAdversary;

impl<P: Protocol> Adversary<P> for NullAdversary {
    fn on_round(
        &mut self,
        _view: &FullInfoView<'_, P>,
        _ctx: &mut ByzantineContext<'_, P::Message>,
    ) {
    }

    /// Silence observes nothing — the engine may fuse merge with delivery.
    fn observes_traffic(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcount_graph::gen::cycle;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "honest node")]
    fn cannot_send_from_honest_nodes() {
        let g = cycle(4).unwrap();
        let is_byz = vec![false, true, false, false];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut out = Vec::new();
        let mut ctx: ByzantineContext<'_, ()> = ByzantineContext {
            graph: &g,
            is_byzantine: &is_byz,
            rng: &mut rng,
            outgoing: &mut out,
        };
        ctx.send(NodeId(0), NodeId(1), ());
    }

    #[test]
    #[should_panic(expected = "non-edge")]
    fn cannot_send_over_non_edges() {
        let g = cycle(4).unwrap();
        let is_byz = vec![false, true, false, false];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut out = Vec::new();
        let mut ctx: ByzantineContext<'_, ()> = ByzantineContext {
            graph: &g,
            is_byzantine: &is_byz,
            rng: &mut rng,
            outgoing: &mut out,
        };
        ctx.send(NodeId(1), NodeId(3), ());
    }

    #[test]
    fn broadcast_targets_distinct_neighbors() {
        let g = cycle(4).unwrap();
        let is_byz = vec![false, true, false, false];
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut out = Vec::new();
        let mut ctx: ByzantineContext<'_, u32> = ByzantineContext {
            graph: &g,
            is_byzantine: &is_byz,
            rng: &mut rng,
            outgoing: &mut out,
        };
        ctx.broadcast(NodeId(1), 5);
        assert_eq!(
            out,
            vec![(NodeId(1), NodeId(0), 5), (NodeId(1), NodeId(2), 5)]
        );
    }
}

//! JSON persistence for the simulator's report types.
//!
//! The vendored `serde` derives are no-ops, so machine-readable artifacts
//! go through [`bcount_json`]'s hand-rolled [`ToJson`] / [`FromJson`]
//! instead: [`Metrics`], [`NodeMetrics`], [`RoundTrace`], [`Pid`],
//! [`StopReason`], and [`SimReport`] all round-trip losslessly
//! (`crates/sim/tests/json_roundtrip.rs` property-tests
//! `read(write(x)) == x`). The execution-facade types
//! [`ExecutionSnapshot`], [`EstimateSummary`], and [`NodeState`] are
//! serialized here too — they are the payloads of the `bcountd/v1`
//! query plane (`crates/daemon`), so their field names are wire schema
//! as well.
//!
//! Field names are part of the artifact schema documented in the README;
//! renaming one is a schema version bump.

use bcount_json::{field, opt_field, FromJson, Json, JsonError, ToJson};

use crate::engine::{SimReport, StopReason};
use crate::execution::{EstimateSummary, ExecutionSnapshot, NodeState};
use crate::fault::{CrashEvent, FaultPlan};
use crate::idspace::Pid;
use crate::metrics::{Metrics, NodeMetrics};
use crate::trace::RoundTrace;

impl ToJson for Pid {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl FromJson for Pid {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        u64::from_json(json).map(Pid)
    }
}

impl ToJson for StopReason {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                StopReason::AllHalted => "all_halted",
                StopReason::AllDecided => "all_decided",
                StopReason::MaxRounds => "max_rounds",
            }
            .to_owned(),
        )
    }
}

impl FromJson for StopReason {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json.as_str() {
            Some("all_halted") => Ok(StopReason::AllHalted),
            Some("all_decided") => Ok(StopReason::AllDecided),
            Some("max_rounds") => Ok(StopReason::MaxRounds),
            Some(other) => Err(JsonError::Shape(format!("unknown stop reason '{other}'"))),
            None => Err(JsonError::Shape("expected stop-reason string".into())),
        }
    }
}

impl ToJson for NodeMetrics {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("messages_sent", self.messages_sent.to_json()),
            ("bits_sent", self.bits_sent.to_json()),
            ("max_message_bits", self.max_message_bits.to_json()),
        ])
    }
}

impl FromJson for NodeMetrics {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(NodeMetrics {
            messages_sent: field(json, "messages_sent")?,
            bits_sent: field(json, "bits_sent")?,
            max_message_bits: field(json, "max_message_bits")?,
        })
    }
}

impl ToJson for RoundTrace {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("round", self.round.to_json()),
            ("honest_messages", self.honest_messages.to_json()),
            ("byzantine_messages", self.byzantine_messages.to_json()),
            ("decided", self.decided.to_json()),
            ("halted", self.halted.to_json()),
        ])
    }
}

impl FromJson for RoundTrace {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(RoundTrace {
            round: field(json, "round")?,
            honest_messages: field(json, "honest_messages")?,
            byzantine_messages: field(json, "byzantine_messages")?,
            decided: field(json, "decided")?,
            halted: field(json, "halted")?,
        })
    }
}

impl ToJson for Metrics {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("per_node", self.per_node.to_json()),
            ("rounds", self.rounds.to_json()),
            ("messages_per_round", self.messages_per_round.to_json()),
            ("round_trace", self.round_trace.to_json()),
            ("dropped", self.dropped.to_json()),
            ("duplicated", self.duplicated.to_json()),
            ("delayed", self.delayed.to_json()),
            ("crashed", self.crashed.to_json()),
        ])
    }
}

impl FromJson for Metrics {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        // The fault counters default to zero so artifacts written before
        // the fault plane existed keep reading.
        Ok(Metrics {
            per_node: field(json, "per_node")?,
            rounds: field(json, "rounds")?,
            messages_per_round: field(json, "messages_per_round")?,
            round_trace: field(json, "round_trace")?,
            dropped: opt_field(json, "dropped")?.unwrap_or(0),
            duplicated: opt_field(json, "duplicated")?.unwrap_or(0),
            delayed: opt_field(json, "delayed")?.unwrap_or(0),
            crashed: opt_field(json, "crashed")?.unwrap_or(0),
        })
    }
}

impl ToJson for CrashEvent {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("round", self.round.to_json()),
            ("node", self.node.to_json()),
        ])
    }
}

impl FromJson for CrashEvent {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(CrashEvent {
            round: field(json, "round")?,
            node: field(json, "node")?,
        })
    }
}

impl ToJson for FaultPlan {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seed", self.seed.to_json()),
            ("crashes", self.crashes.to_json()),
            ("drop_per_mille", self.drop_per_mille.to_json()),
            ("dup_per_mille", self.dup_per_mille.to_json()),
            ("delay_per_mille", self.delay_per_mille.to_json()),
            ("delay_rounds", self.delay_rounds.to_json()),
        ])
    }
}

impl FromJson for FaultPlan {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        // Every field is optional on the wire — a partial plan object
        // fills in the inert defaults, so clients write only the faults
        // they mean to inject.
        let d = FaultPlan::default();
        Ok(FaultPlan {
            seed: opt_field(json, "seed")?.unwrap_or(d.seed),
            crashes: opt_field(json, "crashes")?.unwrap_or_default(),
            drop_per_mille: opt_field(json, "drop_per_mille")?.unwrap_or(0),
            dup_per_mille: opt_field(json, "dup_per_mille")?.unwrap_or(0),
            delay_per_mille: opt_field(json, "delay_per_mille")?.unwrap_or(0),
            delay_rounds: opt_field(json, "delay_rounds")?.unwrap_or(d.delay_rounds),
        })
    }
}

impl<O: ToJson> ToJson for SimReport<O> {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rounds", self.rounds.to_json()),
            ("outputs", self.outputs.to_json()),
            ("decided_round", self.decided_round.to_json()),
            ("halted", self.halted.to_json()),
            ("is_byzantine", self.is_byzantine.to_json()),
            ("pids", self.pids.to_json()),
            ("metrics", self.metrics.to_json()),
            ("stop_reason", self.stop_reason.to_json()),
        ])
    }
}

impl<O: FromJson> FromJson for SimReport<O> {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(SimReport {
            rounds: field(json, "rounds")?,
            outputs: field(json, "outputs")?,
            decided_round: field(json, "decided_round")?,
            halted: field(json, "halted")?,
            is_byzantine: field(json, "is_byzantine")?,
            pids: field(json, "pids")?,
            metrics: field(json, "metrics")?,
            stop_reason: field(json, "stop_reason")?,
        })
    }
}

impl ToJson for EstimateSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", self.count.to_json()),
            ("min", self.min.to_json()),
            ("max", self.max.to_json()),
            ("mean", self.mean.to_json()),
            ("median", self.median.to_json()),
        ])
    }
}

impl FromJson for EstimateSummary {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(EstimateSummary {
            count: field(json, "count")?,
            min: field(json, "min")?,
            max: field(json, "max")?,
            mean: field(json, "mean")?,
            median: field(json, "median")?,
        })
    }
}

impl ToJson for ExecutionSnapshot {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("round", self.round.to_json()),
            ("n", self.n.to_json()),
            ("honest", self.honest.to_json()),
            ("byzantine", self.byzantine.to_json()),
            ("decided", self.decided.to_json()),
            ("halted", self.halted.to_json()),
            ("stop", self.stop.to_json()),
            ("estimate", self.estimate.to_json()),
            ("messages_total", self.messages_total.to_json()),
            ("bits_total", self.bits_total.to_json()),
            ("dropped", self.dropped.to_json()),
            ("duplicated", self.duplicated.to_json()),
            ("delayed", self.delayed.to_json()),
            ("crashed", self.crashed.to_json()),
        ])
    }
}

impl FromJson for ExecutionSnapshot {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(ExecutionSnapshot {
            round: field(json, "round")?,
            n: field(json, "n")?,
            honest: field(json, "honest")?,
            byzantine: field(json, "byzantine")?,
            decided: field(json, "decided")?,
            halted: field(json, "halted")?,
            stop: field(json, "stop")?,
            estimate: field(json, "estimate")?,
            messages_total: field(json, "messages_total")?,
            bits_total: field(json, "bits_total")?,
            dropped: opt_field(json, "dropped")?.unwrap_or(0),
            duplicated: opt_field(json, "duplicated")?.unwrap_or(0),
            delayed: opt_field(json, "delayed")?.unwrap_or(0),
            crashed: opt_field(json, "crashed")?.unwrap_or(0),
        })
    }
}

impl ToJson for NodeState {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("byzantine", self.byzantine.to_json()),
            ("halted", self.halted.to_json()),
            ("decided_round", self.decided_round.to_json()),
            ("estimate", self.estimate.to_json()),
        ])
    }
}

impl FromJson for NodeState {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(NodeState {
            byzantine: field(json, "byzantine")?,
            halted: field(json, "halted")?,
            decided_round: field(json, "decided_round")?,
            estimate: field(json, "estimate")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> SimReport<u64> {
        let mut metrics = Metrics::new(3);
        metrics.per_node[0].record(64);
        metrics.per_node[0].record(128);
        metrics.per_node[2].record(8);
        metrics.rounds = 5;
        metrics.messages_per_round = vec![2, 1, 0, 0, 0];
        metrics.round_trace = vec![RoundTrace {
            round: 1,
            honest_messages: 2,
            byzantine_messages: 1,
            decided: 0,
            halted: 0,
        }];
        SimReport {
            rounds: 5,
            outputs: vec![Some(7), None, Some(9)],
            decided_round: vec![Some(3), None, Some(4)],
            halted: vec![true, false, true],
            is_byzantine: vec![false, true, false],
            pids: vec![Pid(u64::MAX), Pid(0), Pid(42)],
            metrics,
            stop_reason: StopReason::MaxRounds,
        }
    }

    #[test]
    fn sim_report_round_trips() {
        let report = sample_report();
        let text = report.to_json().render().unwrap();
        let back = SimReport::<u64>::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn stop_reason_strings_are_stable() {
        for (reason, tag) in [
            (StopReason::AllHalted, "\"all_halted\""),
            (StopReason::AllDecided, "\"all_decided\""),
            (StopReason::MaxRounds, "\"max_rounds\""),
        ] {
            assert_eq!(reason.to_json().render().unwrap(), tag);
            assert_eq!(
                StopReason::from_json(&Json::parse(tag).unwrap()).unwrap(),
                reason
            );
        }
        assert!(StopReason::from_json(&Json::parse("\"bogus\"").unwrap()).is_err());
    }

    #[test]
    fn pid_keeps_full_64_bits() {
        let pid = Pid(u64::MAX - 1);
        let text = pid.to_json().render().unwrap();
        assert_eq!(Pid::from_json(&Json::parse(&text).unwrap()).unwrap(), pid);
    }
}

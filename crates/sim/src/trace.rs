//! Structured per-round execution traces.
//!
//! When [`crate::SimConfig::record_round_stats`] is set, the engine
//! records one [`RoundTrace`] per round: message volumes split by honest
//! and Byzantine senders, and the running decision/halt census. The
//! experiment harness uses these to plot decision waves (e.g. how the
//! beacon-spam defence of Lemma 11 unfolds phase by phase), and tests use
//! them to assert monotonicity invariants.

use serde::{Deserialize, Serialize};

/// Snapshot of one synchronous round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundTrace {
    /// The round number (1-based).
    pub round: u64,
    /// Messages sent by honest nodes this round.
    pub honest_messages: u64,
    /// Messages sent by Byzantine nodes this round.
    pub byzantine_messages: u64,
    /// Honest nodes with an output at the end of this round.
    pub decided: usize,
    /// Honest nodes halted at the end of this round.
    pub halted: usize,
}

/// Invariant checks over a trace (used by tests; cheap enough to run
/// after any instrumented execution).
///
/// Returns the first violated invariant as a human-readable message.
pub fn validate_trace(trace: &[RoundTrace]) -> Result<(), String> {
    let mut prev_decided = 0usize;
    let mut prev_round = 0u64;
    for t in trace {
        if t.round != prev_round + 1 {
            return Err(format!(
                "rounds must be consecutive: {} after {}",
                t.round, prev_round
            ));
        }
        if t.decided < prev_decided {
            return Err(format!(
                "decisions are irrevocable but count fell {} -> {} at round {}",
                prev_decided, t.decided, t.round
            ));
        }
        if t.halted > t.decided {
            // Halting without deciding is legal in general protocols, but
            // every protocol in this workspace decides at or before
            // halting; flag it so tests catch accidental early halts.
            return Err(format!(
                "round {}: {} halted exceeds {} decided",
                t.round, t.halted, t.decided
            ));
        }
        prev_decided = t.decided;
        prev_round = t.round;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(round: u64, decided: usize, halted: usize) -> RoundTrace {
        RoundTrace {
            round,
            honest_messages: 0,
            byzantine_messages: 0,
            decided,
            halted,
        }
    }

    #[test]
    fn accepts_monotone_traces() {
        let trace = [t(1, 0, 0), t(2, 3, 0), t(3, 3, 3)];
        assert!(validate_trace(&trace).is_ok());
        assert!(validate_trace(&[]).is_ok());
    }

    #[test]
    fn rejects_gaps_and_regressions() {
        assert!(validate_trace(&[t(2, 0, 0)]).is_err());
        assert!(validate_trace(&[t(1, 5, 0), t(2, 3, 0)]).is_err());
        assert!(validate_trace(&[t(1, 1, 2)]).is_err());
    }
}

//! Message and round accounting.
//!
//! Experiment E5 verifies Theorem 2's claim that "at least `(1 − β)n`
//! nodes send messages of at most `O(log n)` bits". These metrics record,
//! per honest node, how many messages it sent, their total size, and the
//! size of the largest single message under the configured ID width.

use serde::{Deserialize, Serialize};

/// Per-node message accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeMetrics {
    /// Messages this node sent over the whole execution.
    pub messages_sent: u64,
    /// Total bits sent.
    pub bits_sent: u64,
    /// Largest single message, in bits.
    pub max_message_bits: u64,
}

impl NodeMetrics {
    pub(crate) fn record(&mut self, bits: u64) {
        self.messages_sent += 1;
        self.bits_sent += bits;
        self.max_message_bits = self.max_message_bits.max(bits);
    }

    /// Records a whole outbox worth of sends at once — numerically
    /// identical to `count` [`NodeMetrics::record`] calls whose sizes sum
    /// to `bits` with maximum `max_bits`. The fused merge accumulates per
    /// node in registers and commits once, keeping the per-message loop
    /// free of read-modify-write traffic on this struct.
    pub(crate) fn record_batch(&mut self, count: u64, bits: u64, max_bits: u64) {
        self.messages_sent += count;
        self.bits_sent += bits;
        self.max_message_bits = self.max_message_bits.max(max_bits);
    }
}

/// Aggregate execution metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Per-node accounting, indexed by graph node id. Byzantine nodes'
    /// slots count the adversary's traffic.
    pub per_node: Vec<NodeMetrics>,
    /// Number of rounds executed.
    pub rounds: u64,
    /// Messages per round (only populated when
    /// [`crate::SimConfig::record_round_stats`] is set).
    pub messages_per_round: Vec<u64>,
    /// Full per-round trace (only populated when
    /// [`crate::SimConfig::record_round_stats`] is set).
    pub round_trace: Vec<crate::trace::RoundTrace>,
    /// Honest messages dropped by the fault plane
    /// ([`crate::fault::FaultPlan::drop_per_mille`]).
    pub dropped: u64,
    /// Honest messages duplicated by the fault plane (each counted
    /// once; the duplicate itself is an extra delivery, not a send —
    /// per-node send metrics record the attempt at merge time).
    pub duplicated: u64,
    /// Honest messages withheld for delayed redelivery.
    pub delayed: u64,
    /// Crash-stop events applied (distinct nodes crashed so far).
    pub crashed: u64,
}

impl Metrics {
    pub(crate) fn new(n: usize) -> Self {
        Metrics {
            per_node: vec![NodeMetrics::default(); n],
            rounds: 0,
            messages_per_round: Vec::new(),
            round_trace: Vec::new(),
            dropped: 0,
            duplicated: 0,
            delayed: 0,
            crashed: 0,
        }
    }

    /// Total messages sent by the given nodes (e.g. the honest subset).
    pub fn total_messages<I: IntoIterator<Item = usize>>(&self, nodes: I) -> u64 {
        nodes
            .into_iter()
            .map(|i| self.per_node[i].messages_sent)
            .sum()
    }

    /// Total bits sent by the given nodes.
    pub fn total_bits<I: IntoIterator<Item = usize>>(&self, nodes: I) -> u64 {
        nodes.into_iter().map(|i| self.per_node[i].bits_sent).sum()
    }

    /// Number of the given nodes whose largest message stayed within
    /// `limit_bits` — the "small messages" census of Theorem 2.
    pub fn count_within_message_limit<I: IntoIterator<Item = usize>>(
        &self,
        nodes: I,
        limit_bits: u64,
    ) -> usize {
        nodes
            .into_iter()
            .filter(|&i| self.per_node[i].max_message_bits <= limit_bits)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_totals_and_max() {
        let mut m = NodeMetrics::default();
        m.record(10);
        m.record(30);
        m.record(20);
        assert_eq!(m.messages_sent, 3);
        assert_eq!(m.bits_sent, 60);
        assert_eq!(m.max_message_bits, 30);
    }

    #[test]
    fn aggregates_over_subsets() {
        let mut m = Metrics::new(3);
        m.per_node[0].record(5);
        m.per_node[1].record(50);
        m.per_node[2].record(7);
        assert_eq!(m.total_messages(0..3), 3);
        assert_eq!(m.total_bits([0, 2]), 12);
        assert_eq!(m.count_within_message_limit(0..3, 10), 2);
    }
}

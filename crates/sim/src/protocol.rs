//! The protocol interface honest nodes implement.

use rand_chacha::ChaCha8Rng;

use crate::idspace::Pid;
use crate::message::{Inbox, MessageSize};

/// A distributed protocol run by every *honest* node.
///
/// One value of the implementing type exists per honest node; the engine
/// drives it one [`Protocol::on_round`] call per synchronous round.
/// Byzantine nodes are driven by an [`crate::Adversary`] instead.
///
/// # Round semantics
///
/// In round `r` a node sees (via [`NodeContext::inbox`]) exactly the
/// messages sent to it in round `r − 1`, and any message it sends is seen
/// by its recipients in round `r + 1`. Local computation is free, matching
/// the LOCAL/CONGEST conventions.
pub trait Protocol {
    /// Message type exchanged over edges.
    type Message: Clone + MessageSize;
    /// The value the node irrevocably decides.
    type Output: Clone;

    /// Declares the protocol **quiescent on silence**: in every round
    /// after the first, a node whose inbox is empty does nothing —
    /// [`Protocol::on_round`] sends no messages, changes no state, draws
    /// no randomness, and flips neither [`Protocol::output`] nor
    /// [`Protocol::has_halted`]. Event-driven protocols (token passing,
    /// frontier floods, convergecasts) satisfy this; anything that counts
    /// silent rounds (stability timers) or sends unconditionally does
    /// not.
    ///
    /// Declaring it licenses [`crate::SimConfig::sparse_rounds`]: the
    /// engine keeps an active set of nodes with pending traffic and
    /// skips the rest of the network entirely, making round cost scale
    /// with traffic instead of `n`. The declaration is a *promise* — the
    /// engine does not verify it, but the determinism suite proves
    /// sparse and dense transcripts byte-identical for the shipped
    /// protocols. Defaults to `false` (the dense schedule).
    const QUIESCENT_ON_SILENCE: bool = false;

    /// Executes one synchronous round.
    fn on_round(&mut self, ctx: &mut NodeContext<'_, Self::Message>);

    /// The node's decision, if it has decided. Decisions are irrevocable:
    /// once `Some`, the value must never change (tests enforce this).
    fn output(&self) -> Option<Self::Output>;

    /// Whether the node has permanently stopped (will never send again).
    /// Halted nodes are no longer scheduled.
    fn has_halted(&self) -> bool {
        false
    }
}

/// Per-round execution context handed to [`Protocol::on_round`].
///
/// Provides the node's identity, its (authenticated) neighbour list, the
/// round number, the inbox of last round's messages, deterministic
/// randomness, and the send/broadcast primitives.
///
/// The outgoing sink is a *borrowed* per-node scratch buffer owned by the
/// engine — sends append to it, and the engine drains it (keeping its
/// capacity) in the deterministic merge step, so steady-state rounds
/// allocate nothing. Sends are stored pre-resolved as *neighbour slots*
/// (indices into the node's sorted neighbour list): [`NodeContext::send`]
/// resolves the target [`Pid`] once, and the engine's delivery map turns
/// the slot into a destination and counting-sort rank with one array load —
/// no per-message identity search ever runs on the merge path.
#[derive(Debug)]
pub struct NodeContext<'a, M> {
    pub(crate) round: u64,
    pub(crate) me: Pid,
    pub(crate) neighbors: &'a [Pid],
    pub(crate) inbox: Inbox<'a, M>,
    pub(crate) rng: &'a mut ChaCha8Rng,
    pub(crate) outgoing: &'a mut Vec<(u32, M)>,
}

impl<'a, M: Clone> NodeContext<'a, M> {
    /// Current round number (1-based).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// This node's own identity.
    pub fn my_id(&self) -> Pid {
        self.me
    }

    /// Authenticated identities of the node's neighbours, with edge
    /// multiplicity, sorted. (Knowing one's neighbours' IDs is the standard
    /// assumption the paper's algorithms make, e.g. for the beacon path
    /// check "whether the neighbor from which it received the message does
    /// indeed have id u_k".)
    pub fn neighbors(&self) -> &[Pid] {
        self.neighbors
    }

    /// The node's degree (with multiplicity).
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Messages received at the end of the previous round, sorted by
    /// sender — a layout-independent [`Inbox`] view (iterate it, index it,
    /// or materialize it with [`Inbox::to_vec`]).
    pub fn inbox(&self) -> Inbox<'a, M> {
        self.inbox
    }

    /// Whether `who` sent us at least one message this round. Used e.g. by
    /// Algorithm 1's mute-neighbour detection.
    pub fn heard_from(&self, who: Pid) -> bool {
        self.inbox.heard_from(who)
    }

    /// This node's private deterministic randomness stream.
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        self.rng
    }

    /// Sends `msg` to the neighbour `to`.
    ///
    /// The neighbour list is sorted, so the membership check is a binary
    /// search; the found index doubles as the engine-level delivery slot.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a neighbour — the simulated network has no
    /// routing; only edge-local communication exists.
    pub fn send(&mut self, to: Pid, msg: M) {
        let slot = self
            .neighbors
            .binary_search(&to)
            .unwrap_or_else(|_| panic!("protocol attempted to send to non-neighbor {to}"));
        self.outgoing.push((slot as u32, msg));
    }

    /// Sends `msg` to every distinct neighbour.
    pub fn broadcast(&mut self, msg: M) {
        let mut last: Option<Pid> = None;
        // Neighbour list is sorted; skip multiplicity duplicates.
        for i in 0..self.neighbors.len() {
            let to = self.neighbors[i];
            if last == Some(to) {
                continue;
            }
            last = Some(to);
            self.outgoing.push((i as u32, msg.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Envelope;
    use rand::SeedableRng;

    fn ctx<'a>(
        neighbors: &'a [Pid],
        inbox: &'a [Envelope<u8>],
        rng: &'a mut ChaCha8Rng,
        outgoing: &'a mut Vec<(u32, u8)>,
    ) -> NodeContext<'a, u8> {
        NodeContext {
            round: 3,
            me: Pid(42),
            neighbors,
            inbox: Inbox::Packed(inbox),
            rng,
            outgoing,
        }
    }

    impl MessageSize for u8 {
        fn size_bits(&self, _id_bits: u32) -> u64 {
            8
        }
    }

    #[test]
    fn broadcast_dedups_multi_edges() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let neighbors = [Pid(1), Pid(1), Pid(2)];
        let mut out = Vec::new();
        let mut c = ctx(&neighbors, &[], &mut rng, &mut out);
        c.broadcast(7);
        // One send per *distinct* neighbour, addressed by slot.
        assert_eq!(out, vec![(0, 7), (2, 7)]);
    }

    #[test]
    fn send_resolves_neighbor_slots() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let neighbors = [Pid(10), Pid(20), Pid(30)];
        let mut out = Vec::new();
        let mut c = ctx(&neighbors, &[], &mut rng, &mut out);
        c.send(Pid(30), 1);
        c.send(Pid(10), 2);
        c.send(Pid(20), 3);
        assert_eq!(out, vec![(2, 1), (0, 2), (1, 3)]);
    }

    #[test]
    fn heard_from_checks_inbox() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let neighbors = [Pid(1)];
        let inbox = [Envelope {
            sender: Pid(1),
            msg: 9u8,
        }];
        let mut out = Vec::new();
        let c = ctx(&neighbors, &inbox, &mut rng, &mut out);
        assert!(c.heard_from(Pid(1)));
        assert!(!c.heard_from(Pid(2)));
        assert_eq!(c.round(), 3);
        assert_eq!(c.my_id(), Pid(42));
        assert_eq!(c.degree(), 1);
    }

    #[test]
    #[should_panic(expected = "non-neighbor")]
    fn send_rejects_strangers() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let neighbors = [Pid(1)];
        let mut out = Vec::new();
        let mut c = ctx(&neighbors, &[], &mut rng, &mut out);
        c.send(Pid(9), 1);
    }

    #[test]
    fn sends_reuse_the_borrowed_scratch_buffer() {
        // The engine's zero-alloc contract: a drained buffer's capacity
        // survives and is reused by the next round's context.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let neighbors = [Pid(1), Pid(2), Pid(3)];
        let mut out = Vec::new();
        ctx(&neighbors, &[], &mut rng, &mut out).broadcast(1);
        out.drain(..);
        let cap = out.capacity();
        assert!(cap >= 3);
        ctx(&neighbors, &[], &mut rng, &mut out).broadcast(2);
        assert_eq!(out.len(), 3);
        assert_eq!(out.capacity(), cap);
    }
}

//! Process peak-RSS introspection for memory-footprint experiments.
//!
//! The million-node scale tier records not just rounds/sec but the
//! high-water mark of resident memory, so artifact consumers can verify
//! the compact-plane claims (u32 sender/offset planes, streaming CSR
//! construction) actually bound the footprint. Linux exposes the peak as
//! `VmHWM` in `/proc/self/status`; on other platforms — or sandboxes
//! that hide procfs — the probe degrades gracefully to `None` and
//! artifacts simply omit the field.

/// The process's peak resident set size in kilobytes, if the platform
/// exposes it.
///
/// Reads `VmHWM` from `/proc/self/status` (Linux only). Returns `None`
/// on any other platform, or when procfs is unavailable or unparsable —
/// callers must treat the measurement as best-effort.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm_kb(&status)
}

/// Extracts the `VmHWM` value (in kB) from a `/proc/<pid>/status` dump.
fn parse_vm_hwm_kb(status: &str) -> Option<u64> {
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    // Format: `VmHWM:     123456 kB`.
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vm_hwm_line() {
        let status = "Name:\tcargo\nVmPeak:\t  999 kB\nVmHWM:\t  123456 kB\nVmRSS:\t 5 kB\n";
        assert_eq!(parse_vm_hwm_kb(status), Some(123456));
    }

    #[test]
    fn missing_or_garbled_lines_fall_back() {
        assert_eq!(parse_vm_hwm_kb(""), None);
        assert_eq!(parse_vm_hwm_kb("VmHWM:\tnot-a-number kB\n"), None);
        assert_eq!(parse_vm_hwm_kb("VmRSS:\t 5 kB\n"), None);
    }

    #[test]
    fn linux_probe_reports_a_plausible_peak() {
        // On Linux the live probe must see at least the few MB this test
        // process already uses; elsewhere it must return None rather
        // than panic.
        if cfg!(target_os = "linux") {
            let kb = peak_rss_kb().expect("procfs available on Linux");
            assert!(kb > 1024, "peak RSS {kb} kB implausibly small");
        } else {
            let _ = peak_rss_kb();
        }
    }
}

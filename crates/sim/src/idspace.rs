//! Opaque protocol-level identities.
//!
//! The paper assumes "all nodes (including the Byzantine nodes) have
//! distinct IDs, chosen from an arbitrarily large set whose size is unknown
//! a priori … node IDs can be viewed as comparable black boxes that do not
//! leak any information about the network size." We realize this by
//! sampling distinct uniform 64-bit identifiers: whatever `n` is, IDs look
//! the same, so protocols cannot deduce `n` from ID lengths or density.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A protocol-level node identity: opaque, comparable, unforgeable.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Pid(pub u64);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:016x}", self.0)
    }
}

/// Samples `n` distinct [`Pid`]s uniformly from the 64-bit space.
///
/// Collisions are resolved by resampling (vanishingly rare for any
/// simulatable `n`).
pub fn assign_pids<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<Pid> {
    let mut seen = std::collections::HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let candidate = Pid(rng.gen());
        if seen.insert(candidate) {
            out.push(candidate);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn pids_are_distinct_and_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = assign_pids(1000, &mut rng);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 1000);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let b = assign_pids(1000, &mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn display_is_fixed_width() {
        let s = Pid(0xAB).to_string();
        assert_eq!(s, "#00000000000000ab");
    }
}

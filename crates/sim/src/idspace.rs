//! Opaque protocol-level identities.
//!
//! The paper assumes "all nodes (including the Byzantine nodes) have
//! distinct IDs, chosen from an arbitrarily large set whose size is unknown
//! a priori … node IDs can be viewed as comparable black boxes that do not
//! leak any information about the network size." We realize this by
//! sampling distinct uniform 64-bit identifiers: whatever `n` is, IDs look
//! the same, so protocols cannot deduce `n` from ID lengths or density.

use bcount_graph::NodeId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A protocol-level node identity: opaque, comparable, unforgeable.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Pid(pub u64);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:016x}", self.0)
    }
}

/// Samples `n` distinct [`Pid`]s uniformly from the 64-bit space.
///
/// Collisions are resolved by resampling (vanishingly rare for any
/// simulatable `n`).
pub fn assign_pids<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<Pid> {
    let mut seen = std::collections::HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let candidate = Pid(rng.gen());
        if seen.insert(candidate) {
            out.push(candidate);
        }
    }
    out
}

/// A dense `Pid → NodeId` reverse index: a flat array of pairs sorted by
/// [`Pid`], resolved by binary search.
///
/// This sits on the engine's delivery hot path (every honest message's
/// destination pid is resolved through it once per round), where the flat
/// sorted layout beats a `HashMap`: no hashing, no pointer chasing, and
/// the whole index for a 10⁶-node network fits in a few MB of contiguous,
/// prefetch-friendly memory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PidIndex {
    entries: Vec<(Pid, NodeId)>,
}

impl PidIndex {
    /// Builds the index for `pids`, where position `i` is graph node `i`.
    pub fn new(pids: &[Pid]) -> Self {
        let mut entries: Vec<(Pid, NodeId)> = pids
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, NodeId(i as u32)))
            .collect();
        entries.sort_unstable_by_key(|&(p, _)| p);
        PidIndex { entries }
    }

    /// The graph node owning `pid`, if any.
    pub fn node_of(&self, pid: Pid) -> Option<NodeId> {
        self.entries
            .binary_search_by_key(&pid, |&(p, _)| p)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Number of indexed identities.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn pids_are_distinct_and_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = assign_pids(1000, &mut rng);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 1000);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let b = assign_pids(1000, &mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn display_is_fixed_width() {
        let s = Pid(0xAB).to_string();
        assert_eq!(s, "#00000000000000ab");
    }

    #[test]
    fn pid_index_resolves_every_assigned_pid() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let pids = assign_pids(257, &mut rng);
        let index = PidIndex::new(&pids);
        assert_eq!(index.len(), 257);
        for (i, &p) in pids.iter().enumerate() {
            assert_eq!(index.node_of(p), Some(NodeId(i as u32)));
        }
    }

    #[test]
    fn pid_index_rejects_unknown_pids() {
        let pids = [Pid(10), Pid(30), Pid(20)];
        let index = PidIndex::new(&pids);
        assert_eq!(index.node_of(Pid(10)), Some(NodeId(0)));
        assert_eq!(index.node_of(Pid(20)), Some(NodeId(2)));
        assert_eq!(index.node_of(Pid(30)), Some(NodeId(1)));
        assert_eq!(index.node_of(Pid(11)), None);
        assert!(!index.is_empty());
        assert!(PidIndex::default().is_empty());
    }
}

//! Opaque protocol-level identities.
//!
//! The paper assumes "all nodes (including the Byzantine nodes) have
//! distinct IDs, chosen from an arbitrarily large set whose size is unknown
//! a priori … node IDs can be viewed as comparable black boxes that do not
//! leak any information about the network size." We realize this by
//! sampling distinct uniform 64-bit identifiers: whatever `n` is, IDs look
//! the same, so protocols cannot deduce `n` from ID lengths or density.

use bcount_graph::{Graph, NodeId};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A protocol-level node identity: opaque, comparable, unforgeable.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Pid(pub u64);

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:016x}", self.0)
    }
}

/// Samples `n` distinct [`Pid`]s uniformly from the 64-bit space.
///
/// Collisions are resolved by resampling (vanishingly rare for any
/// simulatable `n`).
pub fn assign_pids<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Vec<Pid> {
    let mut seen = std::collections::HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let candidate = Pid(rng.gen());
        if seen.insert(candidate) {
            out.push(candidate);
        }
    }
    out
}

/// A dense `Pid → NodeId` reverse index: a flat array of pairs sorted by
/// [`Pid`], resolved by binary search.
///
/// This sits on the engine's delivery hot path (every honest message's
/// destination pid is resolved through it once per round), where the flat
/// sorted layout beats a `HashMap`: no hashing, no pointer chasing, and
/// the whole index for a 10⁶-node network fits in a few MB of contiguous,
/// prefetch-friendly memory.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PidIndex {
    entries: Vec<(Pid, NodeId)>,
}

impl PidIndex {
    /// Builds the index for `pids`, where position `i` is graph node `i`.
    pub fn new(pids: &[Pid]) -> Self {
        let mut entries: Vec<(Pid, NodeId)> = pids
            .iter()
            .enumerate()
            .map(|(i, &p)| (p, NodeId(i as u32)))
            .collect();
        entries.sort_unstable_by_key(|&(p, _)| p);
        PidIndex { entries }
    }

    /// The graph node owning `pid`, if any.
    pub fn node_of(&self, pid: Pid) -> Option<NodeId> {
        self.entries
            .binary_search_by_key(&pid, |&(p, _)| p)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// The graph nodes in increasing-[`Pid`] order — the index's sorted
    /// backbone, exposed so callers (the engine's identity-ordered fused
    /// merge) never re-derive the same permutation.
    pub fn nodes_by_pid(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.entries.iter().map(|&(_, node)| node)
    }

    /// Number of indexed identities.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The per-destination sender-rank table behind the engine's counting-sort
/// delivery.
///
/// For every node `v`, the only identities that can legitimately appear as
/// senders in `v`'s inbox are its graph neighbours (honest sends are
/// neighbour-checked and the adversary is restricted to real edges). This
/// table stores, per destination, those distinct neighbour [`Pid`]s in
/// sorted order — so the *rank* of a sender among them is exactly the
/// position its messages occupy in `v`'s sorted inbox, and sorting an inbox
/// by sender reduces to a counting sort over small dense ranks instead of a
/// comparison sort over opaque 64-bit identifiers.
///
/// Built once per execution from the [`Pid`] assignment; flat CSR layout
/// (one offsets array + one concatenated pid array), so it costs two cache
/// lines per delivery lookup and nothing per round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SenderRanks {
    /// `offsets[v]..offsets[v + 1]` spans `v`'s senders in `senders` —
    /// `u32` offsets, since the distinct-sender total is bounded by the
    /// degree sum.
    offsets: Vec<u32>,
    /// Distinct neighbour pids of every node, sorted per node.
    senders: Vec<Pid>,
}

impl SenderRanks {
    /// Builds the table for `graph` under the identity assignment `pids`
    /// (position `i` is graph node `i`).
    ///
    /// # Panics
    ///
    /// Panics if `pids.len()` differs from the graph's node count.
    pub fn new(graph: &Graph, pids: &[Pid]) -> Self {
        let n = graph.len();
        assert_eq!(pids.len(), n, "one pid per graph node");
        assert!(
            u32::try_from(graph.degree_sum()).is_ok(),
            "sender total exceeds the u32 rank plane"
        );
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut senders = Vec::with_capacity(graph.degree_sum());
        let mut scratch: Vec<Pid> = Vec::new();
        for v in 0..n {
            scratch.clear();
            scratch.extend(graph.neighbors(NodeId(v as u32)).map(|w| pids[w.index()]));
            scratch.sort_unstable();
            scratch.dedup();
            senders.extend_from_slice(&scratch);
            offsets.push(senders.len() as u32);
        }
        SenderRanks { offsets, senders }
    }

    /// The distinct identities that may appear as senders in `v`'s inbox,
    /// sorted.
    pub fn senders(&self, v: NodeId) -> &[Pid] {
        &self.senders[self.offsets[v.index()] as usize..self.offsets[v.index() + 1] as usize]
    }

    /// The rank of `sender` in `v`'s inbox order, if `sender` is a
    /// neighbour of `v`.
    pub fn rank_of(&self, v: NodeId, sender: Pid) -> Option<u32> {
        self.senders(v)
            .binary_search(&sender)
            .ok()
            .map(|i| i as u32)
    }

    /// Number of distinct potential senders of `v`.
    pub fn sender_count(&self, v: NodeId) -> usize {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as usize
    }

    /// Raw CSR offset of node index `v` (valid for `v ⩽ n`), for engines
    /// that keep flat per-sender scratch aligned with this table.
    pub fn offset(&self, v: usize) -> usize {
        self.offsets[v] as usize
    }

    /// Total number of (destination, distinct sender) pairs — the length a
    /// flat per-sender scratch array must have.
    pub fn total(&self) -> usize {
        self.senders.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn pids_are_distinct_and_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = assign_pids(1000, &mut rng);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 1000);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let b = assign_pids(1000, &mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn display_is_fixed_width() {
        let s = Pid(0xAB).to_string();
        assert_eq!(s, "#00000000000000ab");
    }

    #[test]
    fn pid_index_resolves_every_assigned_pid() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let pids = assign_pids(257, &mut rng);
        let index = PidIndex::new(&pids);
        assert_eq!(index.len(), 257);
        for (i, &p) in pids.iter().enumerate() {
            assert_eq!(index.node_of(p), Some(NodeId(i as u32)));
        }
    }

    #[test]
    fn pid_index_rejects_unknown_pids() {
        let pids = [Pid(10), Pid(30), Pid(20)];
        let index = PidIndex::new(&pids);
        assert_eq!(index.node_of(Pid(10)), Some(NodeId(0)));
        assert_eq!(index.node_of(Pid(20)), Some(NodeId(2)));
        assert_eq!(index.node_of(Pid(30)), Some(NodeId(1)));
        assert_eq!(index.node_of(Pid(11)), None);
        assert!(!index.is_empty());
        assert!(PidIndex::default().is_empty());
    }

    #[test]
    fn sender_ranks_order_matches_sorted_pids() {
        use bcount_graph::gen::cycle;
        let g = cycle(5).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let pids = assign_pids(5, &mut rng);
        let ranks = SenderRanks::new(&g, &pids);
        assert_eq!(ranks.total(), 10); // 2 distinct neighbours per node
        for v in 0..5usize {
            let v = NodeId(v as u32);
            let senders = ranks.senders(v);
            assert_eq!(senders.len(), ranks.sender_count(v));
            assert!(senders.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
            for (i, &p) in senders.iter().enumerate() {
                assert_eq!(ranks.rank_of(v, p), Some(i as u32));
            }
            // Non-neighbour pids have no rank.
            assert_eq!(ranks.rank_of(v, pids[v.index()]), None);
        }
    }

    #[test]
    fn sender_ranks_dedup_multi_edges() {
        use bcount_graph::GraphBuilder;
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(0), NodeId(1)); // parallel edge
        let g = b.build();
        let pids = [Pid(7), Pid(3)];
        let ranks = SenderRanks::new(&g, &pids);
        assert_eq!(ranks.senders(NodeId(0)), &[Pid(3)]);
        assert_eq!(ranks.senders(NodeId(1)), &[Pid(7)]);
        assert_eq!(ranks.rank_of(NodeId(1), Pid(7)), Some(0));
    }
}

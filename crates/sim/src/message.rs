//! Message envelopes, size accounting, the flat SoA inbox arena, and the
//! precomputed delivery map.

use crate::idspace::{Pid, SenderRanks};
use bcount_graph::{Graph, NodeId};
use std::fmt;

/// A delivered message with its authenticated sender.
///
/// The engine stamps the sender [`Pid`] itself; neither honest protocols
/// nor the adversary can forge it — this is the paper's "when a Byzantine
/// node sends a message over an edge, it cannot fake its ID".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Authenticated identity of the sending node.
    pub sender: Pid,
    /// The payload.
    pub msg: M,
}

/// Size accounting for protocol messages.
///
/// The paper's CONGEST claim (Theorem 2) is that most good nodes send
/// *small* messages: `O(log n)` bits plus at most a constant number of node
/// IDs. Sizes therefore depend on the modelled ID width, which the
/// simulation supplies as `id_bits` — a message reports how many bits it
/// occupies given that width, and [`crate::Metrics`] aggregates per node.
pub trait MessageSize {
    /// The size of this message in bits, given `id_bits` bits per node ID.
    fn size_bits(&self, id_bits: u32) -> u64;
}

impl MessageSize for () {
    fn size_bits(&self, _id_bits: u32) -> u64 {
        1
    }
}

impl MessageSize for Pid {
    /// A bare [`Pid`] message occupies exactly one modelled node ID.
    fn size_bits(&self, id_bits: u32) -> u64 {
        u64::from(id_bits)
    }
}

impl<M: MessageSize> MessageSize for Envelope<M> {
    fn size_bits(&self, id_bits: u32) -> u64 {
        u64::from(id_bits) + self.msg.size_bits(id_bits)
    }
}

/// A borrowed view of one delivered message: the authenticated sender and
/// a reference to the payload. What [`Inbox`] iteration yields — the
/// by-reference counterpart of [`Envelope`], shared by both physical
/// message layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvelopeRef<'a, M> {
    /// Authenticated identity of the sending node.
    pub sender: Pid,
    /// The payload.
    pub msg: &'a M,
}

/// A borrowed, layout-independent view of one node's inbox (sorted by
/// sender).
///
/// The engine stores delivered messages in one of two physical layouts —
/// per-node [`Envelope`] buffers (the oracle layout) or one contiguous
/// structure-of-arrays arena with the sender and payload fields split into
/// parallel slices ([`crate::engine::InboxLayout::Arena`], the default).
/// Protocols and adversaries read through this view, so they are agnostic
/// to the layout switch; both variants expose identical contents in
/// identical order.
pub enum Inbox<'a, M> {
    /// Per-node packed envelopes (the legacy per-node layout).
    Packed(&'a [Envelope<M>]),
    /// Arena layout: parallel sender/payload slices of equal length. The
    /// arena stores senders as dense `u32` node indices (half the plane
    /// bytes of a `Pid`); the view carries the execution's pid table and
    /// widens to the authenticated [`Pid`] only at the access boundary.
    Split {
        /// Dense node index of each message's sender, aligned with `msgs`.
        senders: &'a [NodeId],
        /// The execution's node-indexed pid table (`pids[node]` is the
        /// authenticated identity of graph node `node`).
        pids: &'a [Pid],
        /// Payloads, aligned with `senders`.
        msgs: &'a [M],
    },
}

// Manual impls: `derive` would demand `M: Clone`/`M: Copy` although only
// references are copied.
impl<M> Clone for Inbox<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<M> Copy for Inbox<'_, M> {}

impl<'a, M> Inbox<'a, M> {
    /// An empty inbox (of the arena shape; representations compare equal
    /// by content).
    pub fn empty() -> Self {
        Inbox::Split {
            senders: &[],
            pids: &[],
            msgs: &[],
        }
    }

    /// Number of messages received.
    pub fn len(&self) -> usize {
        match self {
            Inbox::Packed(envelopes) => envelopes.len(),
            Inbox::Split { senders, .. } => senders.len(),
        }
    }

    /// Whether no message was received.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th message (messages are sorted by sender).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> EnvelopeRef<'a, M> {
        match *self {
            Inbox::Packed(envelopes) => EnvelopeRef {
                sender: envelopes[i].sender,
                msg: &envelopes[i].msg,
            },
            Inbox::Split {
                senders,
                pids,
                msgs,
            } => EnvelopeRef {
                sender: pids[senders[i].index()],
                msg: &msgs[i],
            },
        }
    }

    /// Iterates the messages in inbox (sender-sorted) order. Takes the
    /// view by value (it is `Copy`), so the iterator borrows the
    /// underlying buffers, not the view.
    pub fn iter(self) -> InboxIter<'a, M> {
        InboxIter {
            inbox: self,
            next: 0,
        }
    }

    /// Whether `who` sent at least one of the messages.
    pub fn heard_from(&self, who: Pid) -> bool {
        self.iter().any(|e| e.sender == who)
    }

    /// Folds over the payloads alone, in inbox (sender-sorted) order —
    /// the aggregate-only fast path.
    ///
    /// [`Inbox::iter`] widens every message's sender through the pid
    /// table (`pids[senders[i]]` — one dependent load per message on the
    /// arena layout) to build each [`EnvelopeRef`]. An aggregate-only
    /// protocol (max, sum, any-of) never reads the sender, so this fold
    /// walks the payload plane directly: a plain slice scan on the arena
    /// layout, with no sender loads and no per-message struct assembly.
    /// Payload order is identical to [`Inbox::iter`]'s.
    pub fn fold_payloads<B>(self, init: B, mut fold: impl FnMut(B, &'a M) -> B) -> B {
        match self {
            Inbox::Packed(envelopes) => envelopes.iter().fold(init, |acc, env| fold(acc, &env.msg)),
            Inbox::Split { msgs, .. } => msgs.iter().fold(init, fold),
        }
    }

    /// Materializes the view as owned envelopes (allocates; for protocols
    /// that want to mutate state while walking their intake, and for
    /// cross-layout test comparisons).
    pub fn to_vec(&self) -> Vec<Envelope<M>>
    where
        M: Clone,
    {
        self.iter()
            .map(|e| Envelope {
                sender: e.sender,
                msg: e.msg.clone(),
            })
            .collect()
    }
}

impl<'a, M> IntoIterator for Inbox<'a, M> {
    type Item = EnvelopeRef<'a, M>;
    type IntoIter = InboxIter<'a, M>;

    fn into_iter(self) -> InboxIter<'a, M> {
        self.iter()
    }
}

impl<'a, M> IntoIterator for &Inbox<'a, M> {
    type Item = EnvelopeRef<'a, M>;
    type IntoIter = InboxIter<'a, M>;

    fn into_iter(self) -> InboxIter<'a, M> {
        self.iter()
    }
}

/// Iterator over an [`Inbox`]; see [`Inbox::iter`].
pub struct InboxIter<'a, M> {
    inbox: Inbox<'a, M>,
    next: usize,
}

impl<'a, M> Iterator for InboxIter<'a, M> {
    type Item = EnvelopeRef<'a, M>;

    fn next(&mut self) -> Option<EnvelopeRef<'a, M>> {
        if self.next >= self.inbox.len() {
            return None;
        }
        let item = self.inbox.get(self.next);
        self.next += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.inbox.len() - self.next;
        (left, Some(left))
    }
}

impl<M> ExactSizeIterator for InboxIter<'_, M> {}

/// Content equality across representations: a packed inbox equals an arena
/// inbox with the same (sender, payload) sequence — what the layout
/// equivalence suites byte-compare.
impl<M: PartialEq> PartialEq for Inbox<'_, M> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len()
            && self
                .iter()
                .zip(other.iter())
                .all(|(a, b)| a.sender == b.sender && a.msg == b.msg)
    }
}

impl<M: Eq> Eq for Inbox<'_, M> {}

impl<M: fmt::Debug> fmt::Debug for Inbox<'_, M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.iter().map(|e| (e.sender, e.msg)))
            .finish()
    }
}

/// The flat structure-of-arrays message arena: every node's inbox for one
/// buffer generation, in one contiguous allocation.
///
/// Envelope fields are split into parallel arrays — `senders`, `msgs`, and
/// the counting-sort `ranks` tag — and node `v`'s span is
/// `offsets[v]..offsets[v] + lens[v]`. On the engine's fast path the
/// offsets are the **degree prefix sums precomputed once per execution**
/// (a monotone-slot round delivers at most in-degree messages per node —
/// exact capacity, no growth checks, no per-node allocations, no counting
/// pass); when a round's shape exceeds that bound, the two-pass
/// count/prefix-sum merge recomputes exact packed spans instead (see the
/// engine docs). Two arenas are double-buffered (swapped, never rebuilt),
/// and the arrays grow only to the high-water message count of an
/// execution — capacity is pre-reserved from the delivery map's slot total
/// (the sum of degrees), so one-send-per-edge workloads never reallocate
/// at all.
pub(crate) struct InboxArena<M> {
    /// Per-node span starts, length `n`.
    pub(crate) offsets: Vec<u32>,
    /// Per-node span lengths, length `n` (double as the fast path's write
    /// cursors).
    pub(crate) lens: Vec<u32>,
    /// Whether `offsets` currently holds the static degree prefix (the
    /// fast path's invariant; a two-pass round overwrites the offsets and
    /// clears this, and the next fast round restores them).
    pub(crate) offsets_static: bool,
    /// Whether `senders[..slot_total]` currently holds the static
    /// full-broadcast sender plane (one entry per directed edge, in
    /// inbox order) — the full-round scatter's invariant, letting it skip
    /// the per-message sender write entirely.
    pub(crate) senders_static: bool,
    /// Whether `lens` currently equals the in-degree table (the
    /// full-round invariant).
    pub(crate) lens_full: bool,
    /// Dense node index of every message's sender, arena-indexed — four
    /// bytes per message instead of a `Pid`'s eight; the pid table widens
    /// it back at the [`Inbox`] view boundary.
    pub(crate) senders: Vec<NodeId>,
    /// Payload of every message, arena-indexed. The vector's *length* is
    /// the high-water total (stale bytes outside the live spans are
    /// retained as warm capacity and never exposed).
    pub(crate) msgs: Vec<M>,
    /// Counting-sort rank tag of every message — written (and read) only
    /// within Byzantine-adjacent spans, where delivery must interleave
    /// Byzantine traffic by sender.
    pub(crate) ranks: Vec<u32>,
}

impl<M> InboxArena<M> {
    /// An arena for `n` nodes with `slot_capacity` message slots
    /// pre-reserved and the static degree-prefix `offsets` installed
    /// (degree-presized: pass the graph's slot total).
    pub(crate) fn new(n: usize, deg_offsets: &[u32], slot_capacity: usize) -> Self {
        debug_assert!(deg_offsets.is_empty() || deg_offsets.len() == n);
        InboxArena {
            offsets: if deg_offsets.is_empty() {
                vec![0; n]
            } else {
                deg_offsets.to_vec()
            },
            lens: vec![0; n],
            offsets_static: true,
            senders_static: false,
            lens_full: false,
            senders: Vec::with_capacity(slot_capacity),
            msgs: Vec::with_capacity(slot_capacity),
            ranks: Vec::with_capacity(slot_capacity),
        }
    }

    /// Node `v`'s inbox span as a layout-independent view (`pids` is the
    /// execution's node-indexed pid table the view widens senders
    /// through). Empty spans short-circuit: with the static degree offsets
    /// the arrays may not even cover an empty node's nominal span yet
    /// (e.g. before the first message ever flowed).
    pub(crate) fn inbox<'a>(&'a self, v: usize, pids: &'a [Pid]) -> Inbox<'a, M> {
        let len = self.lens[v] as usize;
        if len == 0 {
            return Inbox::empty();
        }
        let o0 = self.offsets[v] as usize;
        let o1 = o0 + len;
        Inbox::Split {
            senders: &self.senders[o0..o1],
            pids,
            msgs: &self.msgs[o0..o1],
        }
    }

    /// Grows the parallel arrays to hold `total` messages, seeding new
    /// payload slots with `filler` (every slot below `total` is
    /// overwritten by the scatter before it is ever exposed). No-op once
    /// the high-water mark is reached — steady-state rounds never pass
    /// through here.
    pub(crate) fn grow_to(&mut self, total: usize, filler: M)
    where
        M: Clone,
    {
        self.senders.resize(total, NodeId(0));
        self.ranks.resize(total, 0);
        self.msgs.resize(total, filler);
    }
}

/// All inboxes of one buffer generation, in whichever physical layout the
/// engine selected — the engine-internal handle behind
/// [`crate::FullInfoView::inbox`] and the compute phase.
pub(crate) enum InboxesView<'a, M> {
    /// Legacy layout: one `Vec<Envelope>` per node.
    PerNode(&'a [Vec<Envelope<M>>]),
    /// Arena layout: spans of the contiguous SoA arena, plus the
    /// execution's pid table to widen dense sender indices at the view
    /// boundary.
    Arena(&'a InboxArena<M>, &'a [Pid]),
}

impl<M> Clone for InboxesView<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<M> Copy for InboxesView<'_, M> {}

impl<'a, M> InboxesView<'a, M> {
    /// Node `v`'s inbox.
    pub(crate) fn inbox(&self, v: usize) -> Inbox<'a, M> {
        match *self {
            InboxesView::PerNode(buffers) => Inbox::Packed(&buffers[v]),
            InboxesView::Arena(arena, pids) => arena.inbox(v, pids),
        }
    }
}

/// Where one outbox slot delivers: the destination node and the sender's
/// rank in that destination's inbox order.
///
/// See [`DeliveryMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotTarget {
    /// The destination graph node.
    pub to: NodeId,
    /// The sender's rank among the destination's distinct neighbours
    /// (its [`SenderRanks`] rank) — the counting-sort key of the message.
    pub rank: u32,
}

/// Precomputed routing for every (sender, neighbour-slot) pair.
///
/// A node's outbox addresses its sends by *slot*: the index into its own
/// sorted neighbour [`Pid`] list. This map resolves a slot straight to a
/// [`SlotTarget`] — destination [`bcount_graph::NodeId`] plus the sender's
/// rank at that destination — in one flat-array load, replacing both the
/// per-message `Pid → NodeId` binary search on the merge path and the
/// per-inbox comparison sort on the delivery path.
///
/// Built once per execution; flat CSR layout mirroring the graph's own
/// adjacency structure (one entry per directed edge, multiplicity kept).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeliveryMap {
    /// `offsets[u]..offsets[u + 1]` spans `u`'s slots in `targets` — `u32`
    /// offsets (the slot total is the degree sum, far below `u32::MAX` for
    /// any simulatable graph), halving the footprint of this plane.
    offsets: Vec<u32>,
    /// Per-slot routing, aligned with each node's sorted neighbour list.
    targets: Vec<SlotTarget>,
}

impl DeliveryMap {
    /// Builds the map for `graph` under identity assignment `pids`,
    /// together with every node's sorted neighbour pid list (with edge
    /// multiplicity).
    ///
    /// The two are built from one shared ordering pass because they *must*
    /// agree slot-for-slot: `neighbor_pids[u][s]` is the identity a send
    /// through slot `s` reaches, and `map.targets_of(u)[s]` is where the
    /// engine physically delivers it.
    ///
    /// # Panics
    ///
    /// Panics if `pids.len()` differs from the graph's node count.
    pub fn build(graph: &Graph, pids: &[Pid], ranks: &SenderRanks) -> (Vec<Vec<Pid>>, DeliveryMap) {
        let n = graph.len();
        assert_eq!(pids.len(), n, "one pid per graph node");
        assert!(
            u32::try_from(graph.degree_sum()).is_ok(),
            "slot total exceeds the u32 delivery plane"
        );
        let mut neighbor_pids: Vec<Vec<Pid>> = Vec::with_capacity(n);
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut targets = Vec::with_capacity(graph.degree_sum());
        let mut scratch: Vec<(Pid, NodeId)> = Vec::new();
        for u in 0..n {
            scratch.clear();
            scratch.extend(
                graph
                    .neighbors(NodeId(u as u32))
                    .map(|w| (pids[w.index()], w)),
            );
            // Sorting by pid is total: pids are distinct, so ties occur
            // only between parallel edges to the same node.
            scratch.sort_unstable();
            neighbor_pids.push(scratch.iter().map(|&(p, _)| p).collect());
            for &(_, w) in &scratch {
                let rank = ranks
                    .rank_of(w, pids[u])
                    .expect("undirected graph: u is a neighbor of w");
                targets.push(SlotTarget { to: w, rank });
            }
            offsets.push(targets.len() as u32);
        }
        (neighbor_pids, DeliveryMap { offsets, targets })
    }

    /// The routing of every outbox slot of node `u`, aligned with `u`'s
    /// sorted neighbour pid list.
    pub fn targets_of(&self, u: usize) -> &[SlotTarget] {
        &self.targets[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }

    /// Total number of slots (directed edges) in the map.
    pub fn total_slots(&self) -> usize {
        self.targets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_messages_cost_one_bit() {
        assert_eq!(().size_bits(64), 1);
    }

    #[test]
    fn envelope_adds_sender_id() {
        let e = Envelope {
            sender: Pid(1),
            msg: (),
        };
        assert_eq!(e.size_bits(64), 65);
        assert_eq!(e.size_bits(32), 33);
    }

    #[test]
    fn pid_messages_cost_one_id() {
        assert_eq!(Pid(7).size_bits(64), 64);
        assert_eq!(Pid(7).size_bits(20), 20);
    }

    #[test]
    fn delivery_map_routes_slots_to_ranked_destinations() {
        use bcount_graph::gen::path;
        // path(3): 0 – 1 – 2, pids chosen so sorted orders are non-trivial.
        let g = path(3).unwrap();
        let pids = [Pid(50), Pid(10), Pid(30)];
        let ranks = SenderRanks::new(&g, &pids);
        let (neighbor_pids, map) = DeliveryMap::build(&g, &pids, &ranks);
        // Node 1's neighbours sorted by pid: 30 (node 2), 50 (node 0).
        assert_eq!(neighbor_pids[1], vec![Pid(30), Pid(50)]);
        let t = map.targets_of(1);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].to, NodeId(2));
        assert_eq!(t[1].to, NodeId(0));
        // Node 2's only potential sender is pid 10 → rank 0; node 0 same.
        assert_eq!(t[0].rank, 0);
        assert_eq!(t[1].rank, 0);
        // Node 0's single slot reaches node 1; sender pid 50 ranks above
        // pid 30 among node 1's senders {30, 50}.
        let t0 = map.targets_of(0);
        assert_eq!(
            t0,
            &[SlotTarget {
                to: NodeId(1),
                rank: 1
            }]
        );
        // And the slot ordering agrees with the neighbour pid list
        // everywhere.
        for (u, pids) in neighbor_pids.iter().enumerate() {
            assert_eq!(pids.len(), map.targets_of(u).len());
        }
    }

    #[test]
    fn delivery_map_keeps_multi_edge_slots() {
        use bcount_graph::GraphBuilder;
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(0), NodeId(1));
        let g = b.build();
        let pids = [Pid(1), Pid(2)];
        let ranks = SenderRanks::new(&g, &pids);
        let (neighbor_pids, map) = DeliveryMap::build(&g, &pids, &ranks);
        // Multiplicity kept in both views, rank deduped at the receiver.
        assert_eq!(neighbor_pids[0], vec![Pid(2), Pid(2)]);
        assert_eq!(
            map.targets_of(0),
            &[
                SlotTarget {
                    to: NodeId(1),
                    rank: 0
                },
                SlotTarget {
                    to: NodeId(1),
                    rank: 0
                }
            ]
        );
    }
}

//! Message envelopes and size accounting.

use crate::idspace::Pid;

/// A delivered message with its authenticated sender.
///
/// The engine stamps the sender [`Pid`] itself; neither honest protocols
/// nor the adversary can forge it — this is the paper's "when a Byzantine
/// node sends a message over an edge, it cannot fake its ID".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Authenticated identity of the sending node.
    pub sender: Pid,
    /// The payload.
    pub msg: M,
}

/// Size accounting for protocol messages.
///
/// The paper's CONGEST claim (Theorem 2) is that most good nodes send
/// *small* messages: `O(log n)` bits plus at most a constant number of node
/// IDs. Sizes therefore depend on the modelled ID width, which the
/// simulation supplies as `id_bits` — a message reports how many bits it
/// occupies given that width, and [`crate::Metrics`] aggregates per node.
pub trait MessageSize {
    /// The size of this message in bits, given `id_bits` bits per node ID.
    fn size_bits(&self, id_bits: u32) -> u64;
}

impl MessageSize for () {
    fn size_bits(&self, _id_bits: u32) -> u64 {
        1
    }
}

impl MessageSize for Pid {
    /// A bare [`Pid`] message occupies exactly one modelled node ID.
    fn size_bits(&self, id_bits: u32) -> u64 {
        u64::from(id_bits)
    }
}

impl<M: MessageSize> MessageSize for Envelope<M> {
    fn size_bits(&self, id_bits: u32) -> u64 {
        u64::from(id_bits) + self.msg.size_bits(id_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_messages_cost_one_bit() {
        assert_eq!(().size_bits(64), 1);
    }

    #[test]
    fn envelope_adds_sender_id() {
        let e = Envelope {
            sender: Pid(1),
            msg: (),
        };
        assert_eq!(e.size_bits(64), 65);
        assert_eq!(e.size_bits(32), 33);
    }

    #[test]
    fn pid_messages_cost_one_id() {
        assert_eq!(Pid(7).size_bits(64), 64);
        assert_eq!(Pid(7).size_bits(20), 20);
    }
}

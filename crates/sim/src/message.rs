//! Message envelopes, size accounting, and the precomputed delivery map.

use crate::idspace::{Pid, SenderRanks};
use bcount_graph::{Graph, NodeId};

/// A delivered message with its authenticated sender.
///
/// The engine stamps the sender [`Pid`] itself; neither honest protocols
/// nor the adversary can forge it — this is the paper's "when a Byzantine
/// node sends a message over an edge, it cannot fake its ID".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Authenticated identity of the sending node.
    pub sender: Pid,
    /// The payload.
    pub msg: M,
}

/// Size accounting for protocol messages.
///
/// The paper's CONGEST claim (Theorem 2) is that most good nodes send
/// *small* messages: `O(log n)` bits plus at most a constant number of node
/// IDs. Sizes therefore depend on the modelled ID width, which the
/// simulation supplies as `id_bits` — a message reports how many bits it
/// occupies given that width, and [`crate::Metrics`] aggregates per node.
pub trait MessageSize {
    /// The size of this message in bits, given `id_bits` bits per node ID.
    fn size_bits(&self, id_bits: u32) -> u64;
}

impl MessageSize for () {
    fn size_bits(&self, _id_bits: u32) -> u64 {
        1
    }
}

impl MessageSize for Pid {
    /// A bare [`Pid`] message occupies exactly one modelled node ID.
    fn size_bits(&self, id_bits: u32) -> u64 {
        u64::from(id_bits)
    }
}

impl<M: MessageSize> MessageSize for Envelope<M> {
    fn size_bits(&self, id_bits: u32) -> u64 {
        u64::from(id_bits) + self.msg.size_bits(id_bits)
    }
}

/// Where one outbox slot delivers: the destination node and the sender's
/// rank in that destination's inbox order.
///
/// See [`DeliveryMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotTarget {
    /// The destination graph node.
    pub to: NodeId,
    /// The sender's rank among the destination's distinct neighbours
    /// (its [`SenderRanks`] rank) — the counting-sort key of the message.
    pub rank: u32,
}

/// Precomputed routing for every (sender, neighbour-slot) pair.
///
/// A node's outbox addresses its sends by *slot*: the index into its own
/// sorted neighbour [`Pid`] list. This map resolves a slot straight to a
/// [`SlotTarget`] — destination [`bcount_graph::NodeId`] plus the sender's
/// rank at that destination — in one flat-array load, replacing both the
/// per-message `Pid → NodeId` binary search on the merge path and the
/// per-inbox comparison sort on the delivery path.
///
/// Built once per execution; flat CSR layout mirroring the graph's own
/// adjacency structure (one entry per directed edge, multiplicity kept).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeliveryMap {
    /// `offsets[u]..offsets[u + 1]` spans `u`'s slots in `targets`.
    offsets: Vec<usize>,
    /// Per-slot routing, aligned with each node's sorted neighbour list.
    targets: Vec<SlotTarget>,
}

impl DeliveryMap {
    /// Builds the map for `graph` under identity assignment `pids`,
    /// together with every node's sorted neighbour pid list (with edge
    /// multiplicity).
    ///
    /// The two are built from one shared ordering pass because they *must*
    /// agree slot-for-slot: `neighbor_pids[u][s]` is the identity a send
    /// through slot `s` reaches, and `map.targets_of(u)[s]` is where the
    /// engine physically delivers it.
    ///
    /// # Panics
    ///
    /// Panics if `pids.len()` differs from the graph's node count.
    pub fn build(graph: &Graph, pids: &[Pid], ranks: &SenderRanks) -> (Vec<Vec<Pid>>, DeliveryMap) {
        let n = graph.len();
        assert_eq!(pids.len(), n, "one pid per graph node");
        let mut neighbor_pids: Vec<Vec<Pid>> = Vec::with_capacity(n);
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        let mut targets = Vec::new();
        let mut scratch: Vec<(Pid, NodeId)> = Vec::new();
        for u in 0..n {
            scratch.clear();
            scratch.extend(
                graph
                    .neighbors(NodeId(u as u32))
                    .map(|w| (pids[w.index()], w)),
            );
            // Sorting by pid is total: pids are distinct, so ties occur
            // only between parallel edges to the same node.
            scratch.sort_unstable();
            neighbor_pids.push(scratch.iter().map(|&(p, _)| p).collect());
            for &(_, w) in &scratch {
                let rank = ranks
                    .rank_of(w, pids[u])
                    .expect("undirected graph: u is a neighbor of w");
                targets.push(SlotTarget { to: w, rank });
            }
            offsets.push(targets.len());
        }
        (neighbor_pids, DeliveryMap { offsets, targets })
    }

    /// The routing of every outbox slot of node `u`, aligned with `u`'s
    /// sorted neighbour pid list.
    pub fn targets_of(&self, u: usize) -> &[SlotTarget] {
        &self.targets[self.offsets[u]..self.offsets[u + 1]]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_messages_cost_one_bit() {
        assert_eq!(().size_bits(64), 1);
    }

    #[test]
    fn envelope_adds_sender_id() {
        let e = Envelope {
            sender: Pid(1),
            msg: (),
        };
        assert_eq!(e.size_bits(64), 65);
        assert_eq!(e.size_bits(32), 33);
    }

    #[test]
    fn pid_messages_cost_one_id() {
        assert_eq!(Pid(7).size_bits(64), 64);
        assert_eq!(Pid(7).size_bits(20), 20);
    }

    #[test]
    fn delivery_map_routes_slots_to_ranked_destinations() {
        use bcount_graph::gen::path;
        // path(3): 0 – 1 – 2, pids chosen so sorted orders are non-trivial.
        let g = path(3).unwrap();
        let pids = [Pid(50), Pid(10), Pid(30)];
        let ranks = SenderRanks::new(&g, &pids);
        let (neighbor_pids, map) = DeliveryMap::build(&g, &pids, &ranks);
        // Node 1's neighbours sorted by pid: 30 (node 2), 50 (node 0).
        assert_eq!(neighbor_pids[1], vec![Pid(30), Pid(50)]);
        let t = map.targets_of(1);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].to, NodeId(2));
        assert_eq!(t[1].to, NodeId(0));
        // Node 2's only potential sender is pid 10 → rank 0; node 0 same.
        assert_eq!(t[0].rank, 0);
        assert_eq!(t[1].rank, 0);
        // Node 0's single slot reaches node 1; sender pid 50 ranks above
        // pid 30 among node 1's senders {30, 50}.
        let t0 = map.targets_of(0);
        assert_eq!(
            t0,
            &[SlotTarget {
                to: NodeId(1),
                rank: 1
            }]
        );
        // And the slot ordering agrees with the neighbour pid list
        // everywhere.
        for (u, pids) in neighbor_pids.iter().enumerate() {
            assert_eq!(pids.len(), map.targets_of(u).len());
        }
    }

    #[test]
    fn delivery_map_keeps_multi_edge_slots() {
        use bcount_graph::GraphBuilder;
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(0), NodeId(1));
        let g = b.build();
        let pids = [Pid(1), Pid(2)];
        let ranks = SenderRanks::new(&g, &pids);
        let (neighbor_pids, map) = DeliveryMap::build(&g, &pids, &ranks);
        // Multiplicity kept in both views, rank deduped at the receiver.
        assert_eq!(neighbor_pids[0], vec![Pid(2), Pid(2)]);
        assert_eq!(
            map.targets_of(0),
            &[
                SlotTarget {
                    to: NodeId(1),
                    rank: 0
                },
                SlotTarget {
                    to: NodeId(1),
                    rank: 0
                }
            ]
        );
    }
}

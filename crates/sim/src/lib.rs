//! Synchronous full-information message-passing simulator with Byzantine
//! adversaries.
//!
//! This crate implements the distributed computing model of the paper
//! (Section 2):
//!
//! * **Synchronous rounds** — all nodes run in lock-step; a message sent in
//!   round `r` is received by the end of round `r` and acted upon in round
//!   `r + 1` ([`engine::Simulation`]).
//! * **Full-information adversary** — a single [`adversary::Adversary`]
//!   object controls every Byzantine node. Each round it observes the
//!   complete states of all honest nodes *and* the messages they just sent
//!   (rushing), then chooses the Byzantine messages.
//! * **Authenticated channels** — a Byzantine node can say anything but
//!   cannot fake its sender identity ([`message::Envelope`] carries the
//!   authentic [`Pid`]), and can only talk over real edges.
//! * **Information-free IDs** — protocol-level identities ([`Pid`]) are
//!   drawn uniformly from a 64-bit space, so a node cannot infer the
//!   network size from its own ID ([`idspace`]).
//! * **Message-size accounting** — every protocol message reports its size
//!   in bits under an explicit ID-width model ([`message::MessageSize`]),
//!   so experiments can verify the paper's CONGEST claims (most good nodes
//!   send `O(log n)`-bit messages).
//!
//! Execution is deterministic whatever the schedule: with the `parallel`
//! feature the honest compute phase, the merge's metrics scan, and the
//! autotuned sharded delivery lanes fan out over a work-stealing pool
//! through the order-stable helpers in [`pool`], and transcripts stay
//! bit-identical to the serial reference at every pool size (the
//! module docs on [`engine`] describe the pipeline; the determinism and
//! zero-allocation test suites enforce it).
//!
//! # Quick example
//!
//! ```
//! use bcount_graph::gen::cycle;
//! use bcount_sim::prelude::*;
//!
//! // A protocol in which every node announces itself once and halts.
//! struct Hello { sent: bool }
//! impl Protocol for Hello {
//!     type Message = ();
//!     type Output = ();
//!     fn on_round(&mut self, ctx: &mut NodeContext<'_, ()>) {
//!         if !self.sent { ctx.broadcast(()); self.sent = true; }
//!     }
//!     fn output(&self) -> Option<()> { self.sent.then_some(()) }
//!     fn has_halted(&self) -> bool { self.sent }
//! }
//!
//! let g = cycle(8).unwrap();
//! let mut sim = Simulation::new(
//!     &g,
//!     &[],                              // no Byzantine nodes
//!     |_, _| Hello { sent: false },
//!     NullAdversary,
//!     SimConfig::default(),
//! );
//! let report = sim.run();
//! assert!(report.outputs.iter().all(|o| o.is_some()));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adversary;
pub mod engine;
pub mod execution;
pub mod fault;
pub mod idspace;
pub mod json;
pub mod message;
pub mod metrics;
pub mod pool;
pub mod protocol;
pub mod rss;
pub mod trace;

pub use adversary::{Adversary, ByzantineContext, FullInfoView, NullAdversary};
pub use engine::{
    DeliveryMode, InboxLayout, NodeInit, PhaseSend, PhaseShared, SimConfig, SimReport, Simulation,
    StopReason, StopWhen,
};
pub use execution::{
    ConfigError, DynExecution, EstimateSummary, Execution, ExecutionSnapshot, NodeState,
    SimConfigBuilder,
};
pub use fault::{CrashEvent, FaultPlan};
pub use idspace::{Pid, PidIndex, SenderRanks};
pub use message::{DeliveryMap, Envelope, EnvelopeRef, Inbox, InboxIter, MessageSize, SlotTarget};
pub use metrics::{Metrics, NodeMetrics};
pub use protocol::{NodeContext, Protocol};
pub use rss::peak_rss_kb;
pub use trace::{validate_trace, RoundTrace};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::adversary::{Adversary, ByzantineContext, FullInfoView, NullAdversary};
    pub use crate::engine::{
        DeliveryMode, InboxLayout, NodeInit, PhaseSend, PhaseShared, SimConfig, SimReport,
        Simulation, StopReason, StopWhen,
    };
    pub use crate::execution::{
        ConfigError, DynExecution, EstimateSummary, Execution, ExecutionSnapshot, NodeState,
        SimConfigBuilder,
    };
    pub use crate::fault::{CrashEvent, FaultPlan};
    pub use crate::idspace::{Pid, PidIndex, SenderRanks};
    pub use crate::message::{
        DeliveryMap, Envelope, EnvelopeRef, Inbox, InboxIter, MessageSize, SlotTarget,
    };
    pub use crate::metrics::{Metrics, NodeMetrics};
    pub use crate::protocol::{NodeContext, Protocol};
    pub use crate::trace::{validate_trace, RoundTrace};
}

//! Hardening tests for `bcountd`: panic isolation (the acceptance
//! criterion — a deliberately panicking protocol session leaves the
//! daemon serving other sessions), resource caps, idle eviction, step
//! timeouts, line caps, fault-plan specs over the wire, and graceful
//! shutdown.

use std::io::Cursor;
use std::sync::Arc;

use bcount_daemon::server::ServerLimits;
use bcount_daemon::{serve, serve_graceful, Server, Shutdown};
use bcount_json::Json;

/// Parses a response line, asserts the schema tag, returns the `result`.
fn result(line: &str) -> Json {
    let json = Json::parse(line).expect("response must parse");
    assert_eq!(
        json.get("schema").and_then(Json::as_str),
        Some("bcountd/v1"),
        "every reply carries the schema tag: {line}"
    );
    json.get("result")
        .cloned()
        .unwrap_or_else(|| panic!("expected a result reply, got: {line}"))
}

/// Parses a response line, returns `(id, error code)`.
fn error_code(line: &str) -> (Option<u64>, String) {
    let json = Json::parse(line).expect("response must parse");
    let id = json
        .get("id")
        .and_then(Json::as_num)
        .and_then(|n| n.as_u64());
    let code = json
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("expected an error reply, got: {line}"))
        .to_string();
    (id, code)
}

fn get_u64(json: &Json, key: &str) -> u64 {
    json.get(key)
        .and_then(Json::as_num)
        .and_then(|n| n.as_u64())
        .unwrap_or_else(|| panic!("missing u64 '{key}' in {json:?}"))
}

fn frozen() -> Server {
    Server::frozen(ServerLimits::default())
}

/// The acceptance-criterion pin: a panic-probe session poisons itself on
/// step, while a healthy session created before it keeps stepping and
/// the daemon keeps answering — panic isolation is per-session.
#[test]
fn panicking_session_leaves_the_daemon_serving_others() {
    let mut server = frozen();

    let healthy = result(&server.handle_line(
        r#"{"id":1,"method":"session.create","params":{"n":32,"protocol":"geometric-max","budget":5,"seed":3}}"#,
    ));
    let healthy_id = get_u64(&healthy, "session");

    let probe = result(&server.handle_line(
        r#"{"id":2,"method":"session.create","params":{"n":8,"protocol":"panic-probe","panic_at":2,"seed":3}}"#,
    ));
    let probe_id = get_u64(&probe, "session");

    // Round 1 is below panic_at: the probe steps fine.
    let stepped = result(&server.handle_line(&format!(
        r#"{{"id":3,"method":"session.step","params":{{"session":{probe_id},"rounds":1}}}}"#
    )));
    assert_eq!(get_u64(&stepped, "stepped"), 1);

    // Round 2 trips the panic: structured poison reply, not a crash.
    let (id, code) = error_code(&server.handle_line(&format!(
        r#"{{"id":4,"method":"session.step","params":{{"session":{probe_id},"rounds":5}}}}"#
    )));
    assert_eq!((id, code.as_str()), (Some(4), "session-poisoned"));

    // Poison is sticky: steps and queries keep failing structurally.
    let (_, code) = error_code(&server.handle_line(&format!(
        r#"{{"id":5,"method":"session.step","params":{{"session":{probe_id}}}}}"#
    )));
    assert_eq!(code, "session-poisoned");
    let (_, code) = error_code(&server.handle_line(&format!(
        r#"{{"id":6,"method":"session.query","params":{{"session":{probe_id}}}}}"#
    )));
    assert_eq!(code, "session-poisoned");

    // The healthy session is untouched: it steps to completion.
    let stepped = result(&server.handle_line(&format!(
        r#"{{"id":7,"method":"session.step","params":{{"session":{healthy_id},"rounds":1000}}}}"#
    )));
    assert!(get_u64(&stepped, "stepped") > 0);
    assert!(
        stepped
            .get("snapshot")
            .and_then(|s| s.get("stop"))
            .is_some(),
        "healthy session ran to its stop condition"
    );

    // session.list shows the degraded session.
    let listing = result(&server.handle_line(r#"{"id":8,"method":"session.list"}"#));
    let sessions = listing.get("sessions").and_then(Json::as_arr).unwrap();
    assert_eq!(sessions.len(), 2);
    for s in sessions {
        let poisoned = s.get("poisoned").and_then(Json::as_bool).unwrap();
        assert_eq!(poisoned, get_u64(s, "session") == probe_id);
        assert!(s.get("rounds").is_some() && s.get("idle_ms").is_some());
    }

    // Closing the poisoned session works and frees the slot.
    result(&server.handle_line(&format!(
        r#"{{"id":9,"method":"session.close","params":{{"session":{probe_id}}}}}"#
    )));
    assert_eq!(server.session_count(), 1);
}

/// Resource caps reply with `resource-limit` — never a panic, never a
/// half-created session — and closing a session frees its slot.
#[test]
fn resource_limits_reply_structurally() {
    let mut server = Server::frozen(ServerLimits {
        max_sessions: 2,
        max_n: 256,
        ..ServerLimits::default()
    });

    // Over the node cap: refused before any allocation.
    let (id, code) = error_code(&server.handle_line(
        r#"{"id":1,"method":"session.create","params":{"n":257,"protocol":"geometric-max"}}"#,
    ));
    assert_eq!((id, code.as_str()), (Some(1), "resource-limit"));
    assert_eq!(server.session_count(), 0);

    // Fill the table.
    for i in 0..2 {
        result(&server.handle_line(&format!(
            r#"{{"id":{},"method":"session.create","params":{{"n":16,"protocol":"geometric-max","budget":4}}}}"#,
            2 + i
        )));
    }
    let (_, code) = error_code(&server.handle_line(
        r#"{"id":4,"method":"session.create","params":{"n":16,"protocol":"geometric-max"}}"#,
    ));
    assert_eq!(code.as_str(), "resource-limit");
    assert_eq!(server.session_count(), 2);

    // Closing one frees a slot.
    result(&server.handle_line(r#"{"id":5,"method":"session.close","params":{"session":1}}"#));
    result(&server.handle_line(
        r#"{"id":6,"method":"session.create","params":{"n":16,"protocol":"geometric-max"}}"#,
    ));
    assert_eq!(server.session_count(), 2);
}

/// Idle eviction under the frozen clock: sessions idle past the timeout
/// vanish at the next request; fresh activity resets the deadline.
#[test]
fn idle_sessions_are_evicted() {
    let mut server = Server::frozen(ServerLimits {
        idle_timeout_ms: 1000,
        ..ServerLimits::default()
    });
    result(&server.handle_line(
        r#"{"id":1,"method":"session.create","params":{"n":16,"protocol":"geometric-max","budget":4}}"#,
    ));
    result(&server.handle_line(
        r#"{"id":2,"method":"session.create","params":{"n":16,"protocol":"geometric-max","budget":4}}"#,
    ));

    // Touch session 1 at t=600 so its idle clock restarts.
    server.advance_clock_ms(600);
    result(&server.handle_line(r#"{"id":3,"method":"session.query","params":{"session":1}}"#));

    // At t=1100, session 2 (idle 1100ms) is evicted, session 1 (idle
    // 500ms) survives.
    server.advance_clock_ms(500);
    let listing = result(&server.handle_line(r#"{"id":4,"method":"session.list"}"#));
    let sessions = listing.get("sessions").and_then(Json::as_arr).unwrap();
    assert_eq!(sessions.len(), 1);
    assert_eq!(get_u64(&sessions[0], "session"), 1);
    assert_eq!(get_u64(&sessions[0], "idle_ms"), 500);

    let (_, code) = error_code(
        &server.handle_line(r#"{"id":5,"method":"session.step","params":{"session":2}}"#),
    );
    assert_eq!(code, "unknown-session");
}

/// Step timeout: a never-halting session under a 1ms wall-clock budget
/// cannot run its full requested batch; the reply reports partial
/// progress and `timed_out: true`, and the session stays healthy. (The
/// manual clock cannot tick mid-step, so this test uses the wall
/// clock; the deadline is checked between rounds, so it is exact up to
/// one round's work.)
#[test]
fn step_timeout_returns_partial_progress() {
    let mut server = Server::with_limits(ServerLimits {
        step_timeout_ms: 1,
        idle_timeout_ms: 0,
        ..ServerLimits::default()
    });
    // A panic-probe that never trips never halts (and never decides),
    // so only the timeout can end a 10^6-round batch early.
    result(&server.handle_line(
        r#"{"id":1,"method":"session.create","params":{"n":512,"protocol":"panic-probe","panic_at":4000000000,"max_rounds":1000000,"seed":5}}"#,
    ));
    let step = result(&server.handle_line(
        r#"{"id":2,"method":"session.step","params":{"session":1,"rounds":1000000}}"#,
    ));
    assert_eq!(
        step.get("timed_out").and_then(Json::as_bool),
        Some(true),
        "a 1ms budget must trip on a 10^6-round request: {step:?}"
    );
    assert!(get_u64(&step, "stepped") < 1_000_000);
    // The session is NOT poisoned — stepping again makes more progress.
    let again = result(
        &server
            .handle_line(r#"{"id":3,"method":"session.step","params":{"session":1,"rounds":1}}"#),
    );
    assert_eq!(get_u64(&again, "stepped"), 1);
}

/// The transport caps line length: an unterminated monster line gets a
/// structured parse-error and the stream resyncs at the next newline.
#[test]
fn oversized_lines_get_parse_errors_and_resync() {
    let mut server = frozen();
    let mut input = Vec::new();
    input.extend_from_slice(br#"{"id":1,"method":"session.list"}"#);
    input.push(b'\n');
    // 2 MiB of garbage on one line.
    input.extend(std::iter::repeat_n(b'x', 2 << 20));
    input.push(b'\n');
    input.extend_from_slice(br#"{"id":2,"method":"session.list"}"#);
    input.push(b'\n');

    let mut out = Vec::new();
    serve(Cursor::new(input), &mut out, &mut server).unwrap();
    let out = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 3, "three replies for three lines: {out}");
    result(lines[0]);
    let (id, code) = error_code(lines[1]);
    assert_eq!((id, code.as_str()), (None, "parse-error"));
    result(lines[2]);
}

/// Fault plans travel over the wire: a seeded plan in `session.create`
/// shows up in the snapshot's fault counters, and a bad plan (or a
/// crash id out of range) is a structured bad-spec.
#[test]
fn fault_plans_over_the_wire() {
    let mut server = frozen();
    let created = result(&server.handle_line(
        r#"{"id":1,"method":"session.create","params":{"n":64,"protocol":"geometric-max","budget":8,"seed":7,"fault":{"seed":99,"drop_per_mille":150,"dup_per_mille":100,"delay_per_mille":100,"delay_rounds":2,"crashes":[{"round":2,"node":5}]}}}"#,
    ));
    let id = get_u64(&created, "session");
    let step = result(&server.handle_line(&format!(
        r#"{{"id":2,"method":"session.step","params":{{"session":{id},"rounds":500}}}}"#
    )));
    let snap = step.get("snapshot").expect("snapshot");
    assert_eq!(get_u64(snap, "crashed"), 1);
    assert!(
        get_u64(snap, "dropped") > 0
            && get_u64(snap, "duplicated") > 0
            && get_u64(snap, "delayed") > 0,
        "link faults must engage: {snap:?}"
    );

    // Same spec, same plan ⇒ byte-identical snapshot (wire determinism).
    let mut server2 = frozen();
    let created2 = result(&server2.handle_line(
        r#"{"id":1,"method":"session.create","params":{"n":64,"protocol":"geometric-max","budget":8,"seed":7,"fault":{"seed":99,"drop_per_mille":150,"dup_per_mille":100,"delay_per_mille":100,"delay_rounds":2,"crashes":[{"round":2,"node":5}]}}}"#,
    ));
    let id2 = get_u64(&created2, "session");
    let step2 = result(&server2.handle_line(&format!(
        r#"{{"id":2,"method":"session.step","params":{{"session":{id2},"rounds":500}}}}"#
    )));
    assert_eq!(
        snap.render().unwrap(),
        step2.get("snapshot").unwrap().render().unwrap(),
        "same plan, same seed must be byte-identical over the wire"
    );

    // Invalid plans are structured errors.
    let (_, code) = error_code(&server.handle_line(
        r#"{"id":3,"method":"session.create","params":{"n":16,"protocol":"geometric-max","fault":{"drop_per_mille":600,"dup_per_mille":600}}}"#,
    ));
    assert_eq!(code, "bad-spec");
    let (_, code) = error_code(&server.handle_line(
        r#"{"id":4,"method":"session.create","params":{"n":16,"protocol":"geometric-max","fault":{"crashes":[{"round":1,"node":99}]}}}"#,
    ));
    assert_eq!(code, "bad-spec");
}

/// Mirror of the CI `chaos-smoke` job: the committed chaos transcript —
/// resource-limit refusals, a fault-plan session with live counters, a
/// poisoned panic-probe, and recovery — must reproduce the committed
/// golden byte for byte under the job's limits.
#[test]
fn committed_chaos_transcript_is_golden() {
    let input = include_str!("../../../ci/chaos_smoke.input");
    let golden = include_str!("../../../ci/chaos_smoke.golden");
    let mut server = Server::frozen(ServerLimits {
        max_sessions: 2,
        max_n: 256,
        ..ServerLimits::default()
    });
    let replies: Vec<String> = input
        .lines()
        .filter(|line| !line.trim().is_empty())
        .map(|line| server.handle_line(line))
        .collect();
    let mut rendered = replies.join("\n");
    rendered.push('\n');
    assert_eq!(
        rendered, golden,
        "ci/chaos_smoke.golden is stale; regenerate it with \
         `cargo run -p bcount-daemon --bin bcountd -- --frozen-clock \
         --max-sessions 2 --max-n 256 < ci/chaos_smoke.input`"
    );
}

/// Graceful shutdown: with the flag raised, the serve loop drains the
/// lines already read, writes and flushes their replies, and returns —
/// no reply is lost mid-flight.
#[test]
fn graceful_shutdown_drains_and_replies() {
    let mut server = frozen();
    let shutdown = Arc::new(Shutdown::new());
    // Shutdown requested before the loop even starts: everything already
    // in the input must still be answered (the drain path).
    shutdown.request();
    let input = b"{\"id\":1,\"method\":\"session.list\"}\n{\"id\":2,\"method\":\"session.list\"}\n"
        .to_vec();
    let mut out = Vec::new();
    serve_graceful(Cursor::new(input), &mut out, &mut server, &shutdown).unwrap();
    let out = String::from_utf8(out).unwrap();
    // Depending on thread scheduling the drain may see 0, 1, or 2 lines
    // — but every line it saw must have a full reply, and the call must
    // have returned Ok. Re-run without the flag to assert the happy path
    // answers everything.
    for line in out.lines() {
        result(line);
    }
    let shutdown2 = Shutdown::new();
    let input2 = b"{\"id\":1,\"method\":\"session.list\"}\n".to_vec();
    let mut out2 = Vec::new();
    serve_graceful(Cursor::new(input2), &mut out2, &mut server, &shutdown2).unwrap();
    let out2 = String::from_utf8(out2).unwrap();
    assert_eq!(out2.lines().count(), 1);
    result(out2.lines().next().unwrap());
}

/// `daemon.info` answers capability probes: protocol tag, feature list,
/// limits, session count, and (for a non-durable server) null journal
/// and recovery sections.
#[test]
fn daemon_info_reports_capabilities() {
    let mut server = Server::frozen(ServerLimits {
        max_sessions: 7,
        ..ServerLimits::default()
    });
    let info = result(&server.handle_line(r#"{"id":1,"method":"daemon.info"}"#));
    assert_eq!(
        info.get("protocol").and_then(Json::as_str),
        Some("bcountd/v1")
    );
    let features: Vec<&str> = info
        .get("features")
        .and_then(Json::as_arr)
        .expect("features array")
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert!(features.contains(&"sessions") && features.contains(&"fault-injection"));
    assert!(
        !features.contains(&"durability"),
        "non-durable server must not advertise durability: {features:?}"
    );
    let limits = info.get("limits").expect("limits object");
    assert_eq!(get_u64(limits, "max_sessions"), 7);
    assert_eq!(get_u64(&info, "sessions"), 0);
    assert_eq!(info.get("journal"), Some(&Json::Null));
    assert_eq!(info.get("recovery"), Some(&Json::Null));

    result(&server.handle_line(
        r#"{"id":2,"method":"session.create","params":{"n":16,"protocol":"geometric-max","budget":4}}"#,
    ));
    let info = result(&server.handle_line(r#"{"id":3,"method":"daemon.info"}"#));
    assert_eq!(get_u64(&info, "sessions"), 1);
}

//! Property tests for the `bcountd/v1` wire types: for random requests
//! and responses, `parse(render(x)) == x`, through the same
//! line-oriented path the daemon uses.

use bcount_daemon::{ErrorCode, Request, Response, WireError};
use bcount_json::{FromJson, Json, Number, ToJson};
use proptest::collection::vec;
use proptest::prelude::*;

/// Printable-ish strings (includes non-ASCII to exercise escaping).
fn text_strategy() -> impl Strategy<Value = String> {
    vec(0u32..0x500, 0..12).prop_map(|codes| {
        codes
            .iter()
            .filter_map(|&c| char::from_u32(c))
            .collect::<String>()
    })
}

/// A flat JSON value: the leaves `params` objects are built from.
fn leaf_strategy() -> impl Strategy<Value = Json> {
    (0u8..4, any::<u64>(), text_strategy()).prop_map(|(tag, num, text)| match tag {
        0 => Json::Null,
        1 => Json::Bool(num % 2 == 0),
        2 => Json::Num(Number::U(num)),
        _ => Json::Str(text),
    })
}

/// A small `params` object, one level of nesting deep.
fn params_strategy() -> impl Strategy<Value = Json> {
    vec(
        (text_strategy(), leaf_strategy(), vec(leaf_strategy(), 0..3)),
        0..5,
    )
    .prop_map(|pairs| {
        Json::Obj(
            pairs
                .into_iter()
                .enumerate()
                .map(|(i, (key, leaf, arr))| {
                    // Make keys unique: the reader keeps the first match,
                    // so duplicate keys would not round-trip.
                    let key = format!("{key}#{i}");
                    let value = if arr.is_empty() { leaf } else { Json::Arr(arr) };
                    (key, value)
                })
                .collect(),
        )
    })
}

fn request_strategy() -> impl Strategy<Value = Request> {
    (any::<u64>(), text_strategy(), params_strategy()).prop_map(|(id, method, params)| Request {
        id,
        method,
        params,
    })
}

fn error_code_strategy() -> impl Strategy<Value = ErrorCode> {
    (0u8..8).prop_map(|k| match k {
        0 => ErrorCode::ParseError,
        1 => ErrorCode::BadRequest,
        2 => ErrorCode::UnknownMethod,
        3 => ErrorCode::UnknownSession,
        4 => ErrorCode::SessionPoisoned,
        5 => ErrorCode::ResourceLimit,
        6 => ErrorCode::Internal,
        _ => ErrorCode::BadSpec,
    })
}

fn response_strategy() -> impl Strategy<Value = Response> {
    (
        (any::<u64>(), any::<bool>()),
        any::<bool>(),
        params_strategy(),
        error_code_strategy(),
        text_strategy(),
    )
        .prop_map(|((id, id_some), ok, result, code, message)| Response {
            id: id_some.then_some(id),
            body: if ok {
                Ok(result)
            } else {
                Err(WireError { code, message })
            },
        })
}

proptest! {
    #[test]
    fn request_round_trips(req in request_strategy()) {
        let line = req.to_json().render().expect("render");
        prop_assert!(!line.contains('\n'), "wire lines must be single-line");
        let back = Request::from_json(&Json::parse(&line).expect("parse")).expect("from_json");
        prop_assert_eq!(back, req);
    }

    #[test]
    fn response_round_trips(resp in response_strategy()) {
        let line = resp.render_line();
        prop_assert!(!line.contains('\n'), "wire lines must be single-line");
        let back = Response::from_json(&Json::parse(&line).expect("parse")).expect("from_json");
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn requests_without_params_default_to_empty(id in any::<u64>(), method in text_strategy()) {
        let line = Json::obj(vec![
            ("id", id.to_json()),
            ("method", method.to_json()),
        ])
        .render()
        .expect("render");
        let req = Request::from_json(&Json::parse(&line).expect("parse")).expect("from_json");
        prop_assert_eq!(req.id, id);
        prop_assert_eq!(req.method, method);
        prop_assert_eq!(req.params, Json::Obj(Vec::new()));
    }
}

#[test]
fn response_rejects_defective_shapes() {
    // Both result and error.
    let both = r#"{"schema":"bcountd/v1","id":1,"result":{},"error":{"code":"bad-request","message":"x"}}"#;
    assert!(Response::from_json(&Json::parse(both).unwrap()).is_err());
    // Neither result nor error.
    let neither = r#"{"schema":"bcountd/v1","id":1}"#;
    assert!(Response::from_json(&Json::parse(neither).unwrap()).is_err());
    // Wrong schema tag.
    let wrong = r#"{"schema":"bcountd/v2","id":1,"result":{}}"#;
    assert!(Response::from_json(&Json::parse(wrong).unwrap()).is_err());
}

#[test]
fn request_rejects_mismatched_schema_tag() {
    let wrong = r#"{"schema":"bcountd/v0","id":1,"method":"session.list"}"#;
    assert!(Request::from_json(&Json::parse(wrong).unwrap()).is_err());
    let right = r#"{"schema":"bcountd/v1","id":1,"method":"session.list"}"#;
    assert!(Request::from_json(&Json::parse(right).unwrap()).is_ok());
}

//! End-to-end tests for the session server: malformed input never kills
//! it, and a daemon-driven execution is byte-identical to the same
//! execution driven directly through [`Execution`].

use bcount_baselines::{GeometricMax, MaxFakerAdversary};
use bcount_daemon::Server;
use bcount_graph::gen::hnd;
use bcount_graph::NodeId;
use bcount_json::{Json, ToJson};
use bcount_sim::{Execution, SimConfig, StopWhen};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Parses a response line, asserts the schema tag, returns the `result`.
fn result(line: &str) -> Json {
    let json = Json::parse(line).expect("response must parse");
    assert_eq!(
        json.get("schema").and_then(Json::as_str),
        Some("bcountd/v1"),
        "every reply carries the schema tag: {line}"
    );
    json.get("result")
        .cloned()
        .unwrap_or_else(|| panic!("expected a result reply, got: {line}"))
}

/// Parses a response line, returns `(id, error code)`.
fn error_code(line: &str) -> (Option<u64>, String) {
    let json = Json::parse(line).expect("response must parse");
    let id = json
        .get("id")
        .and_then(Json::as_num)
        .and_then(|n| n.as_u64());
    let code = json
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("expected an error reply, got: {line}"))
        .to_string();
    (id, code)
}

fn render(json: &Json) -> String {
    json.render().expect("snapshot renders")
}

#[test]
fn malformed_input_gets_structured_errors_and_the_server_survives() {
    let mut server = Server::new();

    // A truncated line (mid-object cut, as a dropped connection would leave).
    let (id, code) = error_code(&server.handle_line(r#"{"id":1,"method":"session.l"#));
    assert_eq!((id, code.as_str()), (None, "parse-error"));

    // Not JSON at all.
    let (id, code) = error_code(&server.handle_line("step please"));
    assert_eq!((id, code.as_str()), (None, "parse-error"));

    // Valid JSON, wrong shape (not an object).
    let (id, code) = error_code(&server.handle_line("42"));
    assert_eq!((id, code.as_str()), (None, "bad-request"));

    // An object with an id but no method: the id is salvaged so scripted
    // clients can correlate the failure.
    let (id, code) = error_code(&server.handle_line(r#"{"id":7,"params":{}}"#));
    assert_eq!((id, code.as_str()), (Some(7), "bad-request"));

    // Unknown method.
    let (id, code) = error_code(&server.handle_line(r#"{"id":8,"method":"session.explode"}"#));
    assert_eq!((id, code.as_str()), (Some(8), "unknown-method"));

    // Stepping a session that never existed.
    let (id, code) = error_code(
        &server.handle_line(r#"{"id":9,"method":"session.step","params":{"session":3}}"#),
    );
    assert_eq!((id, code.as_str()), (Some(9), "unknown-session"));

    // Bad specs: missing required field, unknown protocol, bad pairing.
    let (_, code) = error_code(
        &server
            .handle_line(r#"{"id":10,"method":"session.create","params":{"protocol":"congest"}}"#),
    );
    assert_eq!(code, "bad-spec");
    let (_, code) = error_code(&server.handle_line(
        r#"{"id":11,"method":"session.create","params":{"n":16,"protocol":"paxos"}}"#,
    ));
    assert_eq!(code, "bad-spec");
    let (_, code) = error_code(&server.handle_line(
        r#"{"id":12,"method":"session.create","params":{"n":16,"protocol":"congest","adversary":"max-faker"}}"#,
    ));
    assert_eq!(code, "bad-spec");

    // None of that leaked a session, and the server still works.
    assert_eq!(server.session_count(), 0);
    let listing = result(&server.handle_line(r#"{"id":13,"method":"session.list"}"#));
    assert_eq!(
        listing
            .get("sessions")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0)
    );
    let created = result(&server.handle_line(
        r#"{"id":14,"method":"session.create","params":{"n":32,"protocol":"geometric-max","budget":5}}"#,
    ));
    assert!(created.get("session").is_some());
    assert_eq!(server.session_count(), 1);
}

/// The acceptance-criterion test: an n ≥ 1024 session created over the
/// wire, driven with interleaved `session.step` / `session.query`
/// requests, stays byte-identical (rendered snapshot JSON) to the same
/// execution built by hand — both mid-flight against a stepped
/// [`Execution`] and at the end against a fresh one driven by a single
/// [`Execution::run`] call.
#[test]
fn daemon_session_is_byte_identical_to_direct_execution() {
    const N: usize = 1024;
    const SEED: u64 = 7;
    const BUDGET: u64 = 40;
    const FAKE: u32 = 30;
    const BYZ: usize = 16;
    const BATCH: u64 = 5;

    // The direct side, built exactly as the daemon's spec documents:
    // graph from `ChaCha8Rng::seed_from_u64(seed)`, spread placement
    // (every ⌊n/count⌋-th node), engine seed = the same seed.
    let direct = || {
        let mut rng = ChaCha8Rng::seed_from_u64(SEED);
        let graph = hnd(N, 8, &mut rng).expect("hnd graph");
        let stride = (N / BYZ).max(1);
        let byz: Vec<NodeId> = (0..BYZ)
            .map(|k| NodeId(((k * stride) % N) as u32))
            .collect();
        let cfg = SimConfig::builder()
            .seed(SEED)
            .max_rounds(10_000)
            .stop_when(StopWhen::AllHonestHalted)
            .build()
            .unwrap();
        Execution::new(
            graph,
            &byz,
            |_, init| GeometricMax::new(BUDGET, init),
            MaxFakerAdversary { fake_value: FAKE },
            cfg,
        )
    };
    let raw = |v: &u32| f64::from(*v);

    let mut server = Server::new();
    let created = result(&server.handle_line(&format!(
        r#"{{"id":1,"method":"session.create","params":{{"n":{N},"protocol":"geometric-max","adversary":"max-faker","byzantine":{BYZ},"seed":{SEED},"budget":{BUDGET},"fake_value":{FAKE}}}}}"#
    )));
    let session = created
        .get("session")
        .and_then(Json::as_num)
        .and_then(|n| n.as_u64())
        .expect("session id");

    // Round 0: the creation snapshot already matches.
    let mut stepped = direct();
    assert_eq!(
        render(created.get("snapshot").expect("snapshot")),
        render(&stepped.snapshot_with(raw).to_json()),
        "creation snapshot diverges from a fresh direct execution"
    );

    // Interleave step and query batches; after every batch the cached
    // snapshot served by `session.query` must match the stepped direct
    // execution byte for byte.
    let mut queries = 0u32;
    loop {
        let step = result(&server.handle_line(&format!(
            r#"{{"id":2,"method":"session.step","params":{{"session":{session},"rounds":{BATCH}}}}}"#
        )));
        stepped.step_rounds(BATCH);

        let query = result(&server.handle_line(&format!(
            r#"{{"id":3,"method":"session.query","params":{{"session":{session}}}}}"#
        )));
        queries += 1;
        let daemon_snapshot = render(query.get("snapshot").expect("snapshot"));
        assert_eq!(
            daemon_snapshot,
            render(&stepped.snapshot_with(raw).to_json()),
            "mid-flight query diverges at round {}",
            stepped.round()
        );
        // The step reply carries the same snapshot the query serves.
        assert_eq!(
            render(step.get("snapshot").expect("snapshot")),
            daemon_snapshot
        );

        if stepped.finished().is_some() {
            break;
        }
        assert!(
            stepped.round() < 10_000,
            "execution failed to finish within max_rounds"
        );
    }
    assert!(queries > 2, "the run must actually interleave step/query");

    // The end state matches one uninterrupted `Execution::run`.
    let mut oneshot = direct();
    oneshot.run();
    let query = result(&server.handle_line(&format!(
        r#"{{"id":4,"method":"session.query","params":{{"session":{session},"nodes":true}}}}"#
    )));
    assert_eq!(
        render(query.get("snapshot").expect("snapshot")),
        render(&oneshot.snapshot_with(raw).to_json()),
        "final daemon snapshot diverges from Execution::run"
    );
    assert_eq!(
        render(query.get("nodes").expect("nodes")),
        render(&oneshot.node_states_with(raw).to_json()),
        "final per-node states diverge from Execution::run"
    );

    // And closing really closes.
    result(&server.handle_line(&format!(
        r#"{{"id":5,"method":"session.close","params":{{"session":{session}}}}}"#
    )));
    let (_, code) = error_code(&server.handle_line(&format!(
        r#"{{"id":6,"method":"session.query","params":{{"session":{session}}}}}"#
    )));
    assert_eq!(code, "unknown-session");
    assert_eq!(server.session_count(), 0);
}

/// Mirror of the CI `daemon-smoke` job: the committed transcript's input
/// lines, fed through [`Server::handle_line`], must reproduce the
/// committed golden output exactly.
#[test]
fn committed_smoke_transcript_is_golden() {
    let input = include_str!("../../../ci/daemon_smoke.input");
    let golden = include_str!("../../../ci/daemon_smoke.golden");
    // Frozen clock, like the CI job's `--frozen-clock`: `idle_ms` fields
    // in `session.list` replies must be byte-stable.
    let mut server = Server::frozen(bcount_daemon::ServerLimits::default());
    let replies: Vec<String> = input
        .lines()
        .filter(|line| !line.trim().is_empty())
        .map(|line| server.handle_line(line))
        .collect();
    let mut rendered = replies.join("\n");
    rendered.push('\n');
    assert_eq!(
        rendered, golden,
        "ci/daemon_smoke.golden is stale; regenerate it with \
         `cargo run -p bcount-daemon --bin bcountd -- --frozen-clock < ci/daemon_smoke.input`"
    );
}

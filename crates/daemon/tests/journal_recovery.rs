//! Recovery tests for the `--state-dir` durability plane — the PR's
//! acceptance criterion lives here: a crash at **any** byte offset of
//! the journal, followed by a restart on the same state dir, must
//! recover without panicking, must never resurrect a half-applied step,
//! and must leave every surviving session byte-identical to an
//! uninterrupted run.
//!
//! The oracle is determinism itself: an independent scan of the
//! corrupted journal computes which applied records survive, and a
//! fresh (non-durable) server replaying exactly those commands must
//! produce the same `session.query` bytes as the recovered server.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use bcount_daemon::journal::{crc32, JOURNAL_FILE};
use bcount_daemon::server::{DurabilityOptions, ServerLimits};
use bcount_daemon::{FsyncPolicy, Server};
use bcount_json::Json;

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A unique scratch state dir (tests in this binary run in parallel).
fn scratch_dir(tag: &str) -> PathBuf {
    let seq = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "bcountd-recovery-{tag}-{}-{seq}",
        std::process::id()
    ))
}

fn durable_opts(dir: &Path, checkpoint_every: u64) -> DurabilityOptions {
    DurabilityOptions {
        state_dir: dir.to_path_buf(),
        // Off: these tests model process crashes (the bytes written so
        // far survive), not machine crashes, and skip the fsync cost.
        fsync: FsyncPolicy::Off,
        checkpoint_every,
    }
}

fn open(dir: &Path, checkpoint_every: u64) -> Server {
    Server::open_durable(
        &durable_opts(dir, checkpoint_every),
        ServerLimits::default(),
        true,
    )
    .expect("open_durable must succeed on any journal content")
}

fn result(line: &str) -> Json {
    let json = Json::parse(line).expect("response must parse");
    json.get("result")
        .cloned()
        .unwrap_or_else(|| panic!("expected a result reply, got: {line}"))
}

fn get_u64(json: &Json, key: &str) -> u64 {
    json.get(key)
        .and_then(Json::as_num)
        .and_then(|n| n.as_u64())
        .unwrap_or_else(|| panic!("missing u64 '{key}' in {json:?}"))
}

const CREATE: &str = r#"{"id":1,"method":"session.create","params":{"n":8,"protocol":"geometric-max","budget":4,"max_rounds":64,"seed":11}}"#;

fn step_line(id: u64, session: u64, rounds: u64) -> String {
    format!(
        r#"{{"id":{id},"method":"session.step","params":{{"session":{session},"rounds":{rounds}}}}}"#
    )
}

fn query_line(id: u64, session: u64) -> String {
    format!(r#"{{"id":{id},"method":"session.query","params":{{"session":{session}}}}}"#)
}

/// The independent journal scan: how many rounds the one test session
/// has committed according to the valid prefix of `bytes`, and whether
/// it exists at all. Mirrors the load rules (newline-terminated,
/// CRC-valid, parseable, strictly increasing LSN) with none of the
/// production code.
fn oracle_scan(bytes: &[u8]) -> (bool, u64) {
    let mut exists = false;
    let mut rounds = 0u64;
    let mut prev_lsn = 0u64;
    let mut offset = 0usize;
    while offset < bytes.len() {
        let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            break;
        };
        let Ok(line) = std::str::from_utf8(&bytes[offset..offset + nl]) else {
            break;
        };
        let Some((crc_hex, payload)) = line.split_once(' ') else {
            break;
        };
        if crc_hex.len() != 8 {
            break;
        }
        let Ok(want) = u32::from_str_radix(crc_hex, 16) else {
            break;
        };
        if crc32(payload.as_bytes()) != want {
            break;
        }
        let Ok(json) = Json::parse(payload) else {
            break;
        };
        let lsn = get_u64(&json, "lsn");
        if lsn <= prev_lsn {
            break;
        }
        prev_lsn = lsn;
        let kind = json.get("kind").and_then(Json::as_str).unwrap_or("");
        let op = json.get("op").and_then(Json::as_str).unwrap_or("");
        // Only applied records count — an intent with no applied is a
        // request that never committed.
        if kind == "applied" {
            match op {
                "create" => exists = true,
                "step" => rounds += get_u64(&json, "stepped"),
                "close" | "evict" => exists = false,
                _ => {}
            }
        }
        offset += nl + 1;
    }
    (exists, rounds)
}

/// Steps a fresh in-memory server to `rounds` and returns the rendered
/// `session.query` result — the uninterrupted-run reference.
fn reference_query(rounds: u64) -> String {
    let mut server = Server::frozen(ServerLimits::default());
    let created = result(&server.handle_line(CREATE));
    let session = get_u64(&created, "session");
    if rounds > 0 {
        result(&server.handle_line(&step_line(2, session, rounds)));
    }
    result(&server.handle_line(&query_line(3, session)))
        .render()
        .unwrap()
}

/// Builds a journal with one create and several steps (no checkpoint),
/// returning its raw bytes.
fn seed_journal(dir: &Path) -> Vec<u8> {
    let mut server = open(dir, u64::MAX);
    let created = result(&server.handle_line(CREATE));
    let session = get_u64(&created, "session");
    for i in 0..4u64 {
        result(&server.handle_line(&step_line(2 + i, session, 2)));
    }
    drop(server);
    fs::read(dir.join(JOURNAL_FILE)).expect("journal written")
}

/// THE acceptance criterion: truncate the journal at every byte offset
/// (a crash can land anywhere), recover, and demand (a) no panic,
/// (b) exactly the oracle's surviving state — a step whose applied
/// record is torn must not resurrect — and (c) `session.query` bytes
/// identical to an uninterrupted run of the surviving rounds.
#[test]
fn recovery_survives_truncation_at_every_byte_offset() {
    let seed_dir = scratch_dir("trunc-seed");
    let journal = seed_journal(&seed_dir);
    fs::remove_dir_all(&seed_dir).ok();
    assert!(journal.len() > 100, "seed journal is non-trivial");

    let dir = scratch_dir("trunc");
    let mut reference_cache: std::collections::BTreeMap<u64, String> = Default::default();
    for cut in 0..=journal.len() {
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(JOURNAL_FILE), &journal[..cut]).unwrap();
        let (exists, rounds) = oracle_scan(&journal[..cut]);
        let mut server = open(&dir, u64::MAX);
        let stats = *server.recovery_stats().expect("durable server has stats");
        assert_eq!(
            stats.recovered_sessions,
            usize::from(exists),
            "cut at byte {cut}: oracle says exists={exists}"
        );
        if exists {
            let query = result(&server.handle_line(&query_line(90, 1)))
                .render()
                .unwrap();
            let reference = reference_cache
                .entry(rounds)
                .or_insert_with(|| reference_query(rounds));
            assert_eq!(
                &query, reference,
                "cut at byte {cut}: recovered session must be byte-identical \
                 to an uninterrupted run of {rounds} round(s)"
            );
        }
        drop(server);
        fs::remove_dir_all(&dir).ok();
    }
}

/// Corruption flavor of the same criterion: flip every single byte in
/// place. Recovery must never panic, and the recovered state must match
/// the oracle's scan of the corrupted bytes (the CRC framing turns any
/// flip into a clean end-of-prefix).
#[test]
fn recovery_survives_a_flip_at_every_byte_offset() {
    let seed_dir = scratch_dir("flip-seed");
    let journal = seed_journal(&seed_dir);
    fs::remove_dir_all(&seed_dir).ok();

    let dir = scratch_dir("flip");
    let mut reference_cache: std::collections::BTreeMap<u64, String> = Default::default();
    for pos in 0..journal.len() {
        let mut corrupted = journal.clone();
        corrupted[pos] ^= 0x20; // case-flip-ish: stays printable, still detected
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(JOURNAL_FILE), &corrupted).unwrap();
        let (exists, rounds) = oracle_scan(&corrupted);
        let mut server = open(&dir, u64::MAX);
        assert_eq!(
            server.recovery_stats().unwrap().recovered_sessions,
            usize::from(exists),
            "flip at byte {pos}: oracle says exists={exists}"
        );
        if exists {
            let query = result(&server.handle_line(&query_line(90, 1)))
                .render()
                .unwrap();
            let reference = reference_cache
                .entry(rounds)
                .or_insert_with(|| reference_query(rounds));
            assert_eq!(
                &query, reference,
                "flip at byte {pos}: recovered state must match the surviving prefix"
            );
        }
        drop(server);
        fs::remove_dir_all(&dir).ok();
    }
}

/// Crash/reopen/continue: for several crash points k, replay the first
/// k requests durably, "crash" (drop the server), recover, run the
/// remaining requests, and demand the final query is byte-identical to
/// the uninterrupted run — the end-to-end shape of the CI smoke job.
#[test]
fn interrupted_runs_converge_to_the_uninterrupted_bytes() {
    let steps: Vec<String> = (0..6u64).map(|i| step_line(2 + i, 1, 2)).collect();

    // Uninterrupted reference.
    let mut reference = Server::frozen(ServerLimits::default());
    result(&reference.handle_line(CREATE));
    for s in &steps {
        result(&reference.handle_line(s));
    }
    let golden = result(&reference.handle_line(&query_line(50, 1)))
        .render()
        .unwrap();

    for crash_after in 0..=steps.len() {
        let dir = scratch_dir("continue");
        let mut server = open(&dir, u64::MAX);
        result(&server.handle_line(CREATE));
        for s in &steps[..crash_after] {
            result(&server.handle_line(s));
        }
        drop(server); // SIGKILL stand-in: no shutdown path runs

        let mut revived = open(&dir, u64::MAX);
        let stats = *revived.recovery_stats().unwrap();
        assert_eq!(stats.recovered_sessions, 1);
        assert_eq!(stats.snapshot_mismatches, 0);
        for s in &steps[crash_after..] {
            result(&revived.handle_line(s));
        }
        let query = result(&revived.handle_line(&query_line(50, 1)))
            .render()
            .unwrap();
        assert_eq!(
            query, golden,
            "crash after {crash_after} step request(s) must converge to the golden bytes"
        );
        fs::remove_dir_all(&dir).ok();
    }
}

/// Checkpoints: a small `checkpoint_every` compacts the journal, the
/// reopened server reports `from_checkpoint`, verifies the snapshot
/// anchor, and keeps serving byte-identically.
#[test]
fn checkpoint_compacts_and_recovers_exactly() {
    let dir = scratch_dir("ckpt");
    let mut server = open(&dir, 3);
    result(&server.handle_line(CREATE));
    for i in 0..5u64 {
        result(&server.handle_line(&step_line(2 + i, 1, 1)));
    }
    drop(server);
    // 1 create + 5 steps = 6 applied records with checkpoint_every=3:
    // at least one checkpoint fired, so the journal holds fewer records
    // than the full history.
    let journal = fs::read_to_string(dir.join(JOURNAL_FILE)).unwrap();
    assert!(
        journal.lines().count() < 12,
        "checkpoint must have truncated the journal:\n{journal}"
    );
    assert!(dir.join("checkpoint.json").exists());

    let mut revived = open(&dir, 3);
    let stats = *revived.recovery_stats().unwrap();
    assert!(stats.from_checkpoint);
    assert_eq!(stats.recovered_sessions, 1);
    assert_eq!(stats.snapshot_mismatches, 0, "anchor must verify");
    let query = result(&revived.handle_line(&query_line(50, 1)))
        .render()
        .unwrap();
    assert_eq!(query, reference_query(5));
    fs::remove_dir_all(&dir).ok();
}

/// A corrupt checkpoint is ignored (recovery falls back to whatever the
/// journal still holds) — never a refusal to start.
#[test]
fn corrupt_checkpoint_never_blocks_startup() {
    let dir = scratch_dir("badckpt");
    let mut server = open(&dir, 2);
    result(&server.handle_line(CREATE));
    for i in 0..4u64 {
        result(&server.handle_line(&step_line(2 + i, 1, 1)));
    }
    drop(server);
    fs::write(dir.join("checkpoint.json"), b"garbage, not a checkpoint\n").unwrap();
    let revived = open(&dir, 2); // must not panic or refuse
    let stats = *revived.recovery_stats().unwrap();
    assert!(!stats.from_checkpoint, "garbage checkpoint must be ignored");
    fs::remove_dir_all(&dir).ok();
}

/// Poison is durable state: a session that panicked recovers *poisoned*
/// — it refuses steps and queries exactly like before the crash, at the
/// same committed round.
#[test]
fn poisoned_sessions_recover_poisoned() {
    let dir = scratch_dir("poison");
    let mut server = open(&dir, u64::MAX);
    result(&server.handle_line(
        r#"{"id":1,"method":"session.create","params":{"n":8,"protocol":"panic-probe","panic_at":3,"seed":11}}"#,
    ));
    result(&server.handle_line(&step_line(2, 1, 2))); // rounds 1-2: fine
    let reply = server.handle_line(&step_line(3, 1, 5)); // round 3 panics
    assert!(reply.contains("session-poisoned"), "got: {reply}");
    drop(server);

    let mut revived = open(&dir, u64::MAX);
    assert_eq!(revived.recovery_stats().unwrap().recovered_sessions, 1);
    let reply = revived.handle_line(&step_line(4, 1, 1));
    assert!(
        reply.contains("session-poisoned"),
        "poison must survive recovery: {reply}"
    );
    let listing = result(&revived.handle_line(r#"{"id":5,"method":"session.list"}"#));
    let sessions = listing.get("sessions").and_then(Json::as_arr).unwrap();
    assert_eq!(sessions.len(), 1);
    assert_eq!(
        sessions[0].get("poisoned").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(
        sessions[0].get("recovered").and_then(Json::as_bool),
        Some(true)
    );
    assert_eq!(get_u64(&sessions[0], "rounds"), 2, "committed rounds only");
    fs::remove_dir_all(&dir).ok();
}

/// `daemon.info` on a durable server: durability feature advertised,
/// journal stats live, recovery stats populated.
#[test]
fn daemon_info_reports_journal_and_recovery() {
    let dir = scratch_dir("info");
    let mut server = open(&dir, 100);
    result(&server.handle_line(CREATE));
    let info = result(&server.handle_line(r#"{"id":2,"method":"daemon.info"}"#));
    let features: Vec<&str> = info
        .get("features")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(Json::as_str)
        .collect();
    assert!(features.contains(&"durability"));
    let journal = info.get("journal").expect("journal stats");
    assert_eq!(journal.get("fsync").and_then(Json::as_str), Some("off"));
    assert_eq!(get_u64(journal, "checkpoint_every"), 100);
    assert!(get_u64(journal, "lsn") >= 2, "create wrote intent+applied");
    let recovery = info.get("recovery").expect("recovery stats");
    assert_eq!(get_u64(recovery, "recovered_sessions"), 0);
    drop(server);

    let mut revived = open(&dir, 100);
    let info = result(&revived.handle_line(r#"{"id":3,"method":"daemon.info"}"#));
    let recovery = info.get("recovery").unwrap();
    assert_eq!(get_u64(recovery, "recovered_sessions"), 1);
    assert_eq!(get_u64(recovery, "replayed_records"), 1);
    fs::remove_dir_all(&dir).ok();
}

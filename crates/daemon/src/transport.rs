//! Line transport for `bcountd`: capped line reading and the serve
//! loops shared by the stdin and unix-socket paths.
//!
//! Two hardening duties live here rather than in [`crate::server`]:
//!
//! * **Line caps** — [`next_line`] never buffers more than
//!   [`MAX_LINE_BYTES`] of one line. A client streaming an unterminated
//!   (or simply enormous) line gets a structured `parse-error` reply and
//!   the reader resyncs at the next newline; memory stays bounded no
//!   matter what the peer sends.
//! * **Graceful shutdown** — [`serve_graceful`] decouples blocking reads
//!   from the serve loop with a reader thread, so a shutdown flag (the
//!   binary's SIGTERM handler) is honored within one poll tick: the
//!   in-flight request finishes, its reply is written and flushed, and
//!   the loop returns instead of dying mid-line.

use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::thread;
use std::time::Duration;

use crate::server::Server;
use crate::wire::{ErrorCode, Response};

/// Hard cap on one request line, in bytes (1 MiB). Far above any real
/// `bcountd/v1` request, far below a memory-exhaustion vector.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// How often the graceful serve loop re-checks the shutdown flag while
/// idle.
const POLL_TICK: Duration = Duration::from_millis(25);

/// One reader event: a complete line, or notice that an oversized line
/// was discarded (already resynced past its terminating newline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineEvent {
    /// A complete line within the cap (without the newline).
    Line(String),
    /// A line longer than [`MAX_LINE_BYTES`]; payload is the discarded
    /// length in bytes (the cap's worth of prefix was buffered, the rest
    /// skipped).
    Oversized(usize),
}

/// Reads the next newline-terminated line, buffering at most
/// [`MAX_LINE_BYTES`]; `None` at clean EOF. An unterminated final line
/// is returned as a line (matching `BufRead::lines`). Invalid UTF-8 is
/// replaced lossily — the JSON parse downstream turns it into a
/// structured `parse-error`.
pub fn next_line(reader: &mut impl BufRead) -> std::io::Result<Option<LineEvent>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut total: usize = 0;
    let mut saw_any = false;
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            if !saw_any {
                return Ok(None);
            }
            break;
        }
        saw_any = true;
        let (chunk_len, consumed, done) = match available.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos, pos + 1, true),
            None => (available.len(), available.len(), false),
        };
        total += chunk_len;
        if buf.len() < MAX_LINE_BYTES {
            let take = chunk_len.min(MAX_LINE_BYTES - buf.len());
            buf.extend_from_slice(&available[..take]);
        }
        reader.consume(consumed);
        if done {
            break;
        }
    }
    if total > MAX_LINE_BYTES {
        Ok(Some(LineEvent::Oversized(total)))
    } else {
        Ok(Some(LineEvent::Line(
            String::from_utf8_lossy(&buf).into_owned(),
        )))
    }
}

/// Whether the event is a blank line (skipped without a reply, so
/// hand-typed sessions can space requests out).
fn is_blank(event: &LineEvent) -> bool {
    matches!(event, LineEvent::Line(line) if line.trim().is_empty())
}

/// The one response line for a reader event.
fn reply_for(server: &mut Server, event: LineEvent) -> String {
    match event {
        LineEvent::Line(line) => server.handle_line(&line),
        LineEvent::Oversized(len) => Response::err(
            None,
            ErrorCode::ParseError,
            format!("line of {len} bytes exceeds the {MAX_LINE_BYTES}-byte limit"),
        )
        .render_line(),
    }
}

/// The synchronous serve loop: one reply line per request line, flushed
/// eagerly so a line-at-a-time client never deadlocks. Returns at EOF.
pub fn serve(
    mut reader: impl BufRead,
    mut writer: impl Write,
    server: &mut Server,
) -> std::io::Result<()> {
    while let Some(event) = next_line(&mut reader)? {
        if is_blank(&event) {
            continue;
        }
        let reply = reply_for(server, event);
        writeln!(writer, "{reply}")?;
        writer.flush()?;
    }
    Ok(())
}

/// [`serve`] with graceful shutdown: reads happen on a helper thread so
/// the serve loop can poll `shutdown` every [`POLL_TICK`] instead of
/// blocking in a read. When the flag goes up, already-read lines are
/// drained (each gets its reply, written and flushed) and the loop
/// returns `Ok(())`; a request being handled when the signal lands
/// always finishes and replies first, because the flag is only checked
/// between requests.
pub fn serve_graceful(
    reader: impl BufRead + Send + 'static,
    mut writer: impl Write,
    server: &mut Server,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    let (tx, rx) = mpsc::channel::<std::io::Result<LineEvent>>();
    // The reader thread is detached: if the loop exits while the thread
    // is blocked in a read, its next send fails on the dropped receiver
    // and it unwinds quietly (or the process exits first — stdin reads
    // cannot be interrupted portably, which is why the thread exists).
    thread::spawn(move || {
        let mut reader = reader;
        loop {
            match next_line(&mut reader) {
                Ok(Some(event)) => {
                    if tx.send(Ok(event)).is_err() {
                        break;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    let _ = tx.send(Err(e));
                    break;
                }
            }
        }
    });
    loop {
        if shutdown.load(Ordering::SeqCst) {
            // Drain lines that were already read so their replies are
            // not silently dropped on the floor.
            while let Ok(Ok(event)) = rx.try_recv() {
                if is_blank(&event) {
                    continue;
                }
                let reply = reply_for(server, event);
                writeln!(writer, "{reply}")?;
            }
            writer.flush()?;
            return Ok(());
        }
        match rx.recv_timeout(POLL_TICK) {
            Ok(Ok(event)) => {
                if is_blank(&event) {
                    continue;
                }
                let reply = reply_for(server, event);
                writeln!(writer, "{reply}")?;
                writer.flush()?;
            }
            Ok(Err(e)) => return Err(e),
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => return Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn next_line_splits_and_caps() {
        let mut r = Cursor::new(b"alpha\nbeta".to_vec());
        assert_eq!(
            next_line(&mut r).unwrap(),
            Some(LineEvent::Line("alpha".into()))
        );
        assert_eq!(
            next_line(&mut r).unwrap(),
            Some(LineEvent::Line("beta".into()))
        );
        assert_eq!(next_line(&mut r).unwrap(), None);

        let big = vec![b'x'; MAX_LINE_BYTES + 7];
        let mut input = big.clone();
        input.push(b'\n');
        input.extend_from_slice(b"after\n");
        let mut r = Cursor::new(input);
        assert_eq!(
            next_line(&mut r).unwrap(),
            Some(LineEvent::Oversized(MAX_LINE_BYTES + 7))
        );
        // Resynced: the next line parses normally.
        assert_eq!(
            next_line(&mut r).unwrap(),
            Some(LineEvent::Line("after".into()))
        );
    }

    #[test]
    fn exactly_at_cap_is_a_line() {
        let mut input = vec![b'y'; MAX_LINE_BYTES];
        input.push(b'\n');
        let mut r = Cursor::new(input);
        match next_line(&mut r).unwrap() {
            Some(LineEvent::Line(s)) => assert_eq!(s.len(), MAX_LINE_BYTES),
            other => panic!("expected a line, got {other:?}"),
        }
    }
}

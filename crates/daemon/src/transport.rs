//! Line transport for `bcountd`: capped line reading and the serve
//! loops shared by the stdin and unix-socket paths.
//!
//! Two hardening duties live here rather than in [`crate::server`]:
//!
//! * **Line caps** — [`next_line`] never buffers more than
//!   [`MAX_LINE_BYTES`] of one line. A client streaming an unterminated
//!   (or simply enormous) line gets a structured `parse-error` reply and
//!   the reader resyncs at the next newline; memory stays bounded no
//!   matter what the peer sends.
//! * **Graceful shutdown** — [`serve_graceful`] decouples blocking reads
//!   from the serve loop with a reader thread and blocks on a single
//!   event channel merging reader I/O with [`Shutdown`] wakes. A
//!   shutdown request interrupts the wait *immediately* (no poll tick):
//!   the in-flight request finishes, already-read lines are drained and
//!   replied to, everything is flushed, and the loop returns instead of
//!   dying mid-line.

use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::Mutex;
use std::thread;

use crate::server::Server;
use crate::wire::{ErrorCode, Response};

/// Hard cap on one request line, in bytes (1 MiB). Far above any real
/// `bcountd/v1` request, far below a memory-exhaustion vector.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// One event pumped into a serve loop: reader I/O, a shutdown wake, or
/// end of input.
pub(crate) enum Pump {
    /// A reader event (or the read error that ended the reader).
    Io(std::io::Result<LineEvent>),
    /// [`Shutdown::request`] fired; re-check the flag.
    Wake,
    /// Clean EOF on the reader.
    Eof,
}

/// An event-driven shutdown signal: an atomic flag plus a registry of
/// serve-loop wakers, so [`Shutdown::request`] interrupts a blocked
/// serve loop immediately instead of waiting out a poll tick.
///
/// `request()` takes a lock and sends on channels, so it is **not**
/// async-signal-safe — a signal handler must defer to a normal thread
/// (the `bcountd` binary uses a self-pipe: the handler writes one byte,
/// a watcher thread reads it and calls `request()`).
pub struct Shutdown {
    flag: AtomicBool,
    wakers: Mutex<Vec<Sender<Pump>>>,
}

impl Shutdown {
    /// A shutdown signal in the "not requested" state. `const`, so it
    /// can back a `static`.
    pub const fn new() -> Self {
        Shutdown {
            flag: AtomicBool::new(false),
            wakers: Mutex::new(Vec::new()),
        }
    }

    /// Requests shutdown: raises the flag and wakes every registered
    /// serve loop. Idempotent; dead wakers (loops that already
    /// returned) are purged as a side effect.
    pub fn request(&self) {
        self.flag.store(true, Ordering::SeqCst);
        let mut wakers = self.wakers.lock().unwrap_or_else(|e| e.into_inner());
        wakers.retain(|w| w.send(Pump::Wake).is_ok());
    }

    /// Whether shutdown has been requested.
    pub fn is_requested(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// Registers a serve loop's event channel for wake-ups.
    fn register(&self, waker: Sender<Pump>) {
        let mut wakers = self.wakers.lock().unwrap_or_else(|e| e.into_inner());
        wakers.push(waker);
    }
}

impl Default for Shutdown {
    fn default() -> Self {
        Shutdown::new()
    }
}

/// One reader event: a complete line, or notice that an oversized line
/// was discarded (already resynced past its terminating newline).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineEvent {
    /// A complete line within the cap (without the newline).
    Line(String),
    /// A line longer than [`MAX_LINE_BYTES`]; payload is the discarded
    /// length in bytes (the cap's worth of prefix was buffered, the rest
    /// skipped).
    Oversized(usize),
}

/// Reads the next newline-terminated line, buffering at most
/// [`MAX_LINE_BYTES`]; `None` at clean EOF. An unterminated final line
/// is returned as a line (matching `BufRead::lines`). Invalid UTF-8 is
/// replaced lossily — the JSON parse downstream turns it into a
/// structured `parse-error`.
pub fn next_line(reader: &mut impl BufRead) -> std::io::Result<Option<LineEvent>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut total: usize = 0;
    let mut saw_any = false;
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            if !saw_any {
                return Ok(None);
            }
            break;
        }
        saw_any = true;
        let (chunk_len, consumed, done) = match available.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos, pos + 1, true),
            None => (available.len(), available.len(), false),
        };
        total += chunk_len;
        if buf.len() < MAX_LINE_BYTES {
            let take = chunk_len.min(MAX_LINE_BYTES - buf.len());
            buf.extend_from_slice(&available[..take]);
        }
        reader.consume(consumed);
        if done {
            break;
        }
    }
    if total > MAX_LINE_BYTES {
        Ok(Some(LineEvent::Oversized(total)))
    } else {
        Ok(Some(LineEvent::Line(
            String::from_utf8_lossy(&buf).into_owned(),
        )))
    }
}

/// Whether the event is a blank line (skipped without a reply, so
/// hand-typed sessions can space requests out).
fn is_blank(event: &LineEvent) -> bool {
    matches!(event, LineEvent::Line(line) if line.trim().is_empty())
}

/// The one response line for a reader event.
fn reply_for(server: &mut Server, event: LineEvent) -> String {
    match event {
        LineEvent::Line(line) => server.handle_line(&line),
        LineEvent::Oversized(len) => Response::err(
            None,
            ErrorCode::ParseError,
            format!("line of {len} bytes exceeds the {MAX_LINE_BYTES}-byte limit"),
        )
        .render_line(),
    }
}

/// The synchronous serve loop: one reply line per request line, flushed
/// eagerly so a line-at-a-time client never deadlocks. Returns at EOF.
pub fn serve(
    mut reader: impl BufRead,
    mut writer: impl Write,
    server: &mut Server,
) -> std::io::Result<()> {
    while let Some(event) = next_line(&mut reader)? {
        if is_blank(&event) {
            continue;
        }
        let reply = reply_for(server, event);
        writeln!(writer, "{reply}")?;
        writer.flush()?;
    }
    Ok(())
}

/// [`serve`] with graceful shutdown: reads happen on a helper thread
/// that pumps [`Pump::Io`] events into a channel; [`Shutdown::request`]
/// pumps a [`Pump::Wake`] into the same channel, so the loop blocks on
/// one `recv()` and reacts to whichever arrives first — no poll tick,
/// no shutdown latency. On shutdown, already-read lines are drained
/// (each gets its reply, written and flushed) and the loop returns
/// `Ok(())`; a request being handled when the signal lands always
/// finishes and replies first, because events are handled one at a
/// time.
pub fn serve_graceful(
    reader: impl BufRead + Send + 'static,
    mut writer: impl Write,
    server: &mut Server,
    shutdown: &Shutdown,
) -> std::io::Result<()> {
    let (tx, rx) = mpsc::channel::<Pump>();
    // The registry keeps a sender alive for the rest of this Shutdown's
    // life, so Disconnected can never signal EOF — the reader thread
    // sends an explicit Pump::Eof instead.
    shutdown.register(tx.clone());
    // The reader thread is detached: if the loop exits while the thread
    // is blocked in a read, its next send fails on the dropped receiver
    // and it unwinds quietly (or the process exits first — stdin reads
    // cannot be interrupted portably, which is why the thread exists).
    thread::spawn(move || {
        let mut reader = reader;
        loop {
            match next_line(&mut reader) {
                Ok(Some(event)) => {
                    if tx.send(Pump::Io(Ok(event))).is_err() {
                        return;
                    }
                }
                Ok(None) => {
                    let _ = tx.send(Pump::Eof);
                    return;
                }
                Err(e) => {
                    let _ = tx.send(Pump::Io(Err(e)));
                    return;
                }
            }
        }
    });
    loop {
        // Checked at the top of every iteration: a wake (or a flag
        // raised before this loop even started) lands here.
        if shutdown.is_requested() {
            // Drain lines that were already read so their replies are
            // not silently dropped on the floor.
            loop {
                match rx.try_recv() {
                    Ok(Pump::Io(Ok(event))) => {
                        if is_blank(&event) {
                            continue;
                        }
                        let reply = reply_for(server, event);
                        writeln!(writer, "{reply}")?;
                    }
                    Ok(Pump::Wake) => continue,
                    Ok(Pump::Io(Err(_))) | Ok(Pump::Eof) | Err(_) => break,
                }
            }
            writer.flush()?;
            return Ok(());
        }
        match rx.recv() {
            Ok(Pump::Io(Ok(event))) => {
                if is_blank(&event) {
                    continue;
                }
                let reply = reply_for(server, event);
                writeln!(writer, "{reply}")?;
                writer.flush()?;
            }
            Ok(Pump::Io(Err(e))) => return Err(e),
            Ok(Pump::Wake) => continue,
            Ok(Pump::Eof) | Err(_) => return Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn next_line_splits_and_caps() {
        let mut r = Cursor::new(b"alpha\nbeta".to_vec());
        assert_eq!(
            next_line(&mut r).unwrap(),
            Some(LineEvent::Line("alpha".into()))
        );
        assert_eq!(
            next_line(&mut r).unwrap(),
            Some(LineEvent::Line("beta".into()))
        );
        assert_eq!(next_line(&mut r).unwrap(), None);

        let big = vec![b'x'; MAX_LINE_BYTES + 7];
        let mut input = big.clone();
        input.push(b'\n');
        input.extend_from_slice(b"after\n");
        let mut r = Cursor::new(input);
        assert_eq!(
            next_line(&mut r).unwrap(),
            Some(LineEvent::Oversized(MAX_LINE_BYTES + 7))
        );
        // Resynced: the next line parses normally.
        assert_eq!(
            next_line(&mut r).unwrap(),
            Some(LineEvent::Line("after".into()))
        );
    }

    #[test]
    fn exactly_at_cap_is_a_line() {
        let mut input = vec![b'y'; MAX_LINE_BYTES];
        input.push(b'\n');
        let mut r = Cursor::new(input);
        match next_line(&mut r).unwrap() {
            Some(LineEvent::Line(s)) => assert_eq!(s.len(), MAX_LINE_BYTES),
            other => panic!("expected a line, got {other:?}"),
        }
    }

    /// A reader whose `read` blocks forever (until its channel is
    /// dropped) — models an idle client connection.
    struct BlockedReader(std::sync::mpsc::Receiver<u8>);

    impl std::io::Read for BlockedReader {
        fn read(&mut self, _buf: &mut [u8]) -> std::io::Result<usize> {
            // Blocks until the sender drops, then reports EOF.
            let _ = self.0.recv();
            Ok(0)
        }
    }

    #[test]
    fn shutdown_request_wakes_a_blocked_serve_loop() {
        use std::sync::Arc;

        let (hold_tx, hold_rx) = mpsc::channel::<u8>();
        let reader = std::io::BufReader::new(BlockedReader(hold_rx));
        let shutdown = Arc::new(Shutdown::new());
        let signal = Arc::clone(&shutdown);
        // Request shutdown from another thread shortly after the loop
        // blocks. The loop has no data and the reader never returns, so
        // serve_graceful returning at all proves the wake is
        // event-driven, not a poll.
        let requester = thread::spawn(move || {
            thread::sleep(std::time::Duration::from_millis(20));
            signal.request();
        });
        let mut server = Server::new();
        let mut out = Vec::new();
        serve_graceful(reader, &mut out, &mut server, &shutdown).unwrap();
        requester.join().unwrap();
        assert!(shutdown.is_requested());
        assert!(out.is_empty());
        drop(hold_tx);
    }

    #[test]
    fn request_before_serve_returns_immediately() {
        let shutdown = Shutdown::new();
        shutdown.request();
        shutdown.request(); // idempotent
        let mut server = Server::new();
        let mut out = Vec::new();
        // Flag was already up: the loop drains (nothing) and returns
        // without ever blocking on the reader.
        let (_hold_tx, hold_rx) = mpsc::channel::<u8>();
        let reader = std::io::BufReader::new(BlockedReader(hold_rx));
        serve_graceful(reader, &mut out, &mut server, &shutdown).unwrap();
        assert!(out.is_empty());
    }
}

//! The session table and request dispatcher behind `bcountd`.
//!
//! A [`Server`] owns every live session: a type-erased
//! [`DynExecution`](bcount_sim::DynExecution) plus its cached
//! [`ExecutionSnapshot`]. The cache is refreshed only when a
//! `session.step` actually advances the execution, so `session.query`
//! is a pure read — any number of queries between steps cost one cached
//! clone each and never touch (let alone perturb) the round loop.
//!
//! [`Server::handle_line`] is the whole protocol: one request line in,
//! one response line out, errors included. Transport loops (stdin, unix
//! socket, tests) just move lines.
//!
//! # Hardening
//!
//! The server is built to keep serving under misbehaving sessions and
//! clients:
//!
//! * **Panic isolation** — protocol/adversary code runs inside
//!   `catch_unwind` during `session.create`, `session.step`, and the
//!   node-state half of `session.query`. A panic *poisons* that one
//!   session: it keeps its table slot (so `session.list` shows the
//!   failure) but answers every step/query with a structured
//!   `session-poisoned` error until closed. Other sessions, and the
//!   daemon itself, are untouched.
//! * **Step timeouts** — `session.step` checks a wall-clock deadline
//!   between rounds ([`ServerLimits::step_timeout_ms`]) and returns the
//!   partial progress with `"timed_out": true` instead of blocking the
//!   single-threaded serve loop forever. The rounds that did run are
//!   byte-identical to an untimed run of the same count.
//! * **Resource caps** — [`ServerLimits::max_sessions`] and
//!   [`ServerLimits::max_n`] bound the table; exceeding either is a
//!   structured `resource-limit` error, not an OOM.
//! * **Idle eviction** — sessions untouched for
//!   [`ServerLimits::idle_timeout_ms`] are dropped at the next request,
//!   so abandoned clients cannot pin memory indefinitely.
//!
//! Time is read through an internal clock that tests (and the
//! `--frozen-clock` flag) can pin to a manual counter, keeping golden
//! transcripts that include `idle_ms` fields byte-stable.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use bcount_json::{field, opt_field, FromJson, Json, ToJson};
use bcount_sim::{DynExecution, ExecutionSnapshot};

use crate::spec::{SessionInfo, SessionSpec};
use crate::wire::{ErrorCode, Request, Response, WireError};

/// Resource and latency bounds enforced by the [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerLimits {
    /// Maximum live sessions; `session.create` past this is a
    /// `resource-limit` error.
    pub max_sessions: usize,
    /// Maximum nodes per session; a spec requesting more is a
    /// `resource-limit` error (before any allocation happens).
    pub max_n: usize,
    /// Wall-clock budget for one `session.step` request, in
    /// milliseconds; `0` disables the deadline.
    pub step_timeout_ms: u64,
    /// Idle time after which a session is evicted, in milliseconds;
    /// `0` disables eviction.
    pub idle_timeout_ms: u64,
}

impl Default for ServerLimits {
    fn default() -> Self {
        ServerLimits {
            max_sessions: 256,
            max_n: 1 << 20,
            step_timeout_ms: 30_000,
            idle_timeout_ms: 900_000,
        }
    }
}

/// Millisecond clock: wall time in production, a manual counter under
/// `--frozen-clock` and in tests (keeps `idle_ms` fields golden-stable).
#[derive(Debug, Clone, Copy)]
enum Clock {
    Wall(Instant),
    Manual(u64),
}

impl Clock {
    fn now_ms(&self) -> u64 {
        match self {
            Clock::Wall(epoch) => epoch.elapsed().as_millis() as u64,
            Clock::Manual(ms) => *ms,
        }
    }
}

/// One live session.
struct Session {
    info: SessionInfo,
    exec: Box<dyn DynExecution>,
    /// Snapshot taken after the last step batch (or at creation);
    /// queries are served from this cache.
    snapshot: ExecutionSnapshot,
    /// Clock reading at the last request touching this session.
    last_touch_ms: u64,
    /// `Some(panic message)` once session code panicked; a poisoned
    /// session refuses to step or answer queries until closed.
    poisoned: Option<String>,
}

/// The daemon state: a monotonically-ided session table plus the
/// hardening limits ([`ServerLimits`]).
pub struct Server {
    sessions: BTreeMap<u64, Session>,
    next_id: u64,
    limits: ServerLimits,
    clock: Clock,
}

impl Default for Server {
    fn default() -> Self {
        Server::new()
    }
}

impl Server {
    /// An empty session table with default limits and the wall clock.
    pub fn new() -> Self {
        Server::with_limits(ServerLimits::default())
    }

    /// An empty session table with explicit limits and the wall clock.
    pub fn with_limits(limits: ServerLimits) -> Self {
        Server {
            sessions: BTreeMap::new(),
            next_id: 0,
            limits,
            clock: Clock::Wall(Instant::now()),
        }
    }

    /// An empty session table whose clock only moves via
    /// [`Server::advance_clock_ms`] — deterministic `idle_ms` and
    /// timeouts for tests and golden transcripts.
    pub fn frozen(limits: ServerLimits) -> Self {
        Server {
            sessions: BTreeMap::new(),
            next_id: 0,
            limits,
            clock: Clock::Manual(0),
        }
    }

    /// Advances a frozen clock (no-op under the wall clock).
    pub fn advance_clock_ms(&mut self, ms: u64) {
        if let Clock::Manual(now) = &mut self.clock {
            *now += ms;
        }
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Handles one request line and renders the one response line (no
    /// trailing newline). Never panics on input: malformed lines become
    /// structured `parse-error`/`bad-request` replies, and panicking
    /// session code becomes a `session-poisoned` reply.
    pub fn handle_line(&mut self, line: &str) -> String {
        self.evict_idle();
        let json = match Json::parse(line) {
            Ok(json) => json,
            Err(e) => {
                return Response::err(None, ErrorCode::ParseError, e.to_string()).render_line()
            }
        };
        let request = match Request::from_json(&json) {
            Ok(request) => request,
            Err(e) => {
                // Salvage the id when the object carried a usable one, so
                // a scripted client can still correlate the failure.
                let id = json
                    .get("id")
                    .and_then(Json::as_num)
                    .and_then(|n| n.as_u64());
                return Response::err(id, ErrorCode::BadRequest, e.to_string()).render_line();
            }
        };
        let id = request.id;
        match self.dispatch(&request) {
            Ok(result) => Response::ok(id, result),
            Err(error) => Response {
                id: Some(id),
                body: Err(error),
            },
        }
        .render_line()
    }

    fn dispatch(&mut self, request: &Request) -> Result<Json, WireError> {
        match request.method.as_str() {
            "session.create" => self.create(&request.params),
            "session.step" => self.step(&request.params),
            "session.query" => self.query(&request.params),
            "session.list" => Ok(self.list()),
            "session.close" => self.close(&request.params),
            other => Err(WireError {
                code: ErrorCode::UnknownMethod,
                message: format!("unknown method '{other}'"),
            }),
        }
    }

    fn evict_idle(&mut self) {
        let timeout = self.limits.idle_timeout_ms;
        if timeout == 0 || self.sessions.is_empty() {
            return;
        }
        let now = self.clock.now_ms();
        self.sessions
            .retain(|_, s| now.saturating_sub(s.last_touch_ms) < timeout);
    }

    fn create(&mut self, params: &Json) -> Result<Json, WireError> {
        if self.sessions.len() >= self.limits.max_sessions {
            return Err(WireError {
                code: ErrorCode::ResourceLimit,
                message: format!(
                    "session table is full ({} live, limit {})",
                    self.sessions.len(),
                    self.limits.max_sessions
                ),
            });
        }
        let spec = SessionSpec::from_params(params).map_err(|e| WireError {
            code: ErrorCode::BadSpec,
            message: e.to_string(),
        })?;
        if spec.requested_n() > self.limits.max_n {
            return Err(WireError {
                code: ErrorCode::ResourceLimit,
                message: format!(
                    "n={} exceeds the per-session limit {}",
                    spec.requested_n(),
                    self.limits.max_n
                ),
            });
        }
        // Session construction runs protocol factories: isolate panics so
        // a faulty protocol cannot take the daemon down. Nothing was
        // inserted yet, so a create panic leaves no poisoned slot behind.
        let built = catch_unwind(AssertUnwindSafe(|| {
            spec.build().map(|(exec, info)| {
                let snapshot = exec.snapshot();
                (exec, info, snapshot)
            })
        }))
        .map_err(|payload| WireError {
            code: ErrorCode::SessionPoisoned,
            message: format!(
                "session creation panicked: {}",
                panic_message(payload.as_ref())
            ),
        })?;
        let (exec, info, snapshot) = built.map_err(|e| WireError {
            code: ErrorCode::BadSpec,
            message: e.to_string(),
        })?;
        self.next_id += 1;
        let id = self.next_id;
        let result = Json::obj(vec![
            ("session", id.to_json()),
            ("spec", info.to_json()),
            ("snapshot", snapshot.to_json()),
        ]);
        self.sessions.insert(
            id,
            Session {
                info,
                exec,
                snapshot,
                last_touch_ms: self.clock.now_ms(),
                poisoned: None,
            },
        );
        Ok(result)
    }

    fn step(&mut self, params: &Json) -> Result<Json, WireError> {
        let id = session_id(params)?;
        let rounds: u64 = opt_field(params, "rounds")
            .map_err(bad_request)?
            .unwrap_or(1);
        let clock = self.clock;
        let timeout = self.limits.step_timeout_ms;
        let session = self.session_mut(id)?;
        session.last_touch_ms = clock.now_ms();
        if let Some(msg) = &session.poisoned {
            return Err(poisoned(id, msg));
        }
        let before = session.exec.round();
        // Step round by round so the wall-clock deadline is checked
        // between rounds — byte-identical to one step_rounds(rounds)
        // call by the facade's stepping discipline. Panics inside
        // protocol code poison this session only.
        let started = clock.now_ms();
        let stepped = catch_unwind(AssertUnwindSafe(|| {
            let mut timed_out = false;
            for _ in 0..rounds {
                if timeout > 0 && clock.now_ms().saturating_sub(started) >= timeout {
                    timed_out = true;
                    break;
                }
                if session.exec.step_rounds(1).is_some() {
                    break;
                }
            }
            // A step batch is the only thing that can move the execution,
            // so this is the one place the query cache refreshes.
            (timed_out, session.exec.snapshot())
        }));
        match stepped {
            Ok((timed_out, snapshot)) => {
                session.snapshot = snapshot;
                let mut pairs = vec![
                    ("session", id.to_json()),
                    ("stepped", (session.snapshot.round - before).to_json()),
                    ("snapshot", session.snapshot.to_json()),
                ];
                if timed_out {
                    pairs.push(("timed_out", true.to_json()));
                }
                Ok(Json::obj(pairs))
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                session.poisoned = Some(msg.clone());
                Err(poisoned(id, &msg))
            }
        }
    }

    fn query(&mut self, params: &Json) -> Result<Json, WireError> {
        let id = session_id(params)?;
        let with_nodes: bool = opt_field(params, "nodes")
            .map_err(bad_request)?
            .unwrap_or(false);
        let now = self.clock.now_ms();
        let session = self.session_mut(id)?;
        session.last_touch_ms = now;
        if let Some(msg) = &session.poisoned {
            return Err(poisoned(id, msg));
        }
        let mut pairs = vec![
            ("session", id.to_json()),
            ("snapshot", session.snapshot.to_json()),
        ];
        if with_nodes {
            // node_states re-reads protocol outputs, so it can run
            // arbitrary session code — same isolation as stepping.
            match catch_unwind(AssertUnwindSafe(|| session.exec.node_states())) {
                Ok(nodes) => pairs.push(("nodes", nodes.to_json())),
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    session.poisoned = Some(msg.clone());
                    return Err(poisoned(id, &msg));
                }
            }
        }
        Ok(Json::obj(pairs))
    }

    fn list(&self) -> Json {
        let now = self.clock.now_ms();
        let sessions: Vec<Json> = self
            .sessions
            .iter()
            .map(|(&id, s)| {
                Json::obj(vec![
                    ("session", id.to_json()),
                    ("spec", s.info.to_json()),
                    ("rounds", s.snapshot.round.to_json()),
                    ("idle_ms", now.saturating_sub(s.last_touch_ms).to_json()),
                    ("poisoned", s.poisoned.is_some().to_json()),
                    ("stop", s.snapshot.stop.to_json()),
                ])
            })
            .collect();
        Json::obj(vec![("sessions", Json::Arr(sessions))])
    }

    fn close(&mut self, params: &Json) -> Result<Json, WireError> {
        let id = session_id(params)?;
        if self.sessions.remove(&id).is_none() {
            return Err(unknown_session(id));
        }
        Ok(Json::obj(vec![
            ("session", id.to_json()),
            ("closed", true.to_json()),
        ]))
    }

    fn session_mut(&mut self, id: u64) -> Result<&mut Session, WireError> {
        self.sessions
            .get_mut(&id)
            .ok_or_else(|| unknown_session(id))
    }
}

fn session_id(params: &Json) -> Result<u64, WireError> {
    field(params, "session").map_err(bad_request)
}

fn bad_request(e: bcount_json::JsonError) -> WireError {
    WireError {
        code: ErrorCode::BadRequest,
        message: e.to_string(),
    }
}

fn unknown_session(id: u64) -> WireError {
    WireError {
        code: ErrorCode::UnknownSession,
        message: format!("no session {id}"),
    }
}

fn poisoned(id: u64, msg: &str) -> WireError {
    WireError {
        code: ErrorCode::SessionPoisoned,
        message: format!("session {id} is poisoned: {msg}"),
    }
}

/// Extracts the human-readable message from a panic payload (panics via
/// `panic!("...")` carry `&str` or `String`; anything else is opaque).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

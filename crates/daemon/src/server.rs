//! The session table and request dispatcher behind `bcountd`.
//!
//! A [`Server`] owns every live session: a type-erased
//! [`DynExecution`](bcount_sim::DynExecution) plus its cached
//! [`ExecutionSnapshot`]. The cache is refreshed only when a
//! `session.step` actually advances the execution, so `session.query`
//! is a pure read — any number of queries between steps cost one cached
//! clone each and never touch (let alone perturb) the round loop.
//!
//! [`Server::handle_line`] is the whole protocol: one request line in,
//! one response line out, errors included. Transport loops (stdin, unix
//! socket, tests) just move lines.
//!
//! # Hardening
//!
//! The server is built to keep serving under misbehaving sessions and
//! clients:
//!
//! * **Panic isolation** — protocol/adversary code runs inside
//!   `catch_unwind` during `session.create`, `session.step`, and the
//!   node-state half of `session.query`. A panic *poisons* that one
//!   session: it keeps its table slot (so `session.list` shows the
//!   failure) but answers every step/query with a structured
//!   `session-poisoned` error until closed. Other sessions, and the
//!   daemon itself, are untouched.
//! * **Step timeouts** — `session.step` checks a wall-clock deadline
//!   between rounds ([`ServerLimits::step_timeout_ms`]) and returns the
//!   partial progress with `"timed_out": true` instead of blocking the
//!   single-threaded serve loop forever. The rounds that did run are
//!   byte-identical to an untimed run of the same count.
//! * **Resource caps** — [`ServerLimits::max_sessions`] and
//!   [`ServerLimits::max_n`] bound the table; exceeding either is a
//!   structured `resource-limit` error, not an OOM.
//! * **Idle eviction** — sessions untouched for
//!   [`ServerLimits::idle_timeout_ms`] are dropped at the next request,
//!   so abandoned clients cannot pin memory indefinitely.
//!
//! Time is read through an internal clock that tests (and the
//! `--frozen-clock` flag) can pin to a manual counter, keeping golden
//! transcripts that include `idle_ms` fields byte-stable.

use std::collections::BTreeMap;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::Instant;

use bcount_json::{field, opt_field, FromJson, Json, ToJson};
use bcount_sim::{DynExecution, ExecutionSnapshot};

use crate::journal::{
    self, Checkpoint, CheckpointSession, FsyncPolicy, Journal, RecordBody, RecoveryStats,
};
use crate::spec::{SessionInfo, SessionSpec};
use crate::wire::{ErrorCode, Request, Response, WireError, SCHEMA};

/// Resource and latency bounds enforced by the [`Server`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerLimits {
    /// Maximum live sessions; `session.create` past this is a
    /// `resource-limit` error.
    pub max_sessions: usize,
    /// Maximum nodes per session; a spec requesting more is a
    /// `resource-limit` error (before any allocation happens).
    pub max_n: usize,
    /// Wall-clock budget for one `session.step` request, in
    /// milliseconds; `0` disables the deadline.
    pub step_timeout_ms: u64,
    /// Idle time after which a session is evicted, in milliseconds;
    /// `0` disables eviction.
    pub idle_timeout_ms: u64,
}

impl Default for ServerLimits {
    fn default() -> Self {
        ServerLimits {
            max_sessions: 256,
            max_n: 1 << 20,
            step_timeout_ms: 30_000,
            idle_timeout_ms: 900_000,
        }
    }
}

/// Millisecond clock: wall time in production, a manual counter under
/// `--frozen-clock` and in tests (keeps `idle_ms` fields golden-stable).
#[derive(Debug, Clone, Copy)]
enum Clock {
    Wall(Instant),
    Manual(u64),
}

impl Clock {
    fn now_ms(&self) -> u64 {
        match self {
            Clock::Wall(epoch) => epoch.elapsed().as_millis() as u64,
            Clock::Manual(ms) => *ms,
        }
    }
}

/// One live session.
struct Session {
    info: SessionInfo,
    exec: Box<dyn DynExecution>,
    /// Snapshot taken after the last step batch (or at creation);
    /// queries are served from this cache.
    snapshot: ExecutionSnapshot,
    /// The raw `session.create` params — the durable identity of this
    /// session (checkpoints store these; recovery rebuilds from them).
    params: Json,
    /// Clock reading at the last request touching this session.
    last_touch_ms: u64,
    /// `Some(panic message)` once session code panicked; a poisoned
    /// session refuses to step or answer queries until closed.
    poisoned: Option<String>,
    /// Whether this session was reconstructed by startup recovery
    /// rather than created over the wire (surfaced in `session.list`).
    recovered: bool,
}

/// Where and how a durable [`Server`] persists its sessions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityOptions {
    /// Directory holding `journal.log` and `checkpoint.json` (created
    /// if missing).
    pub state_dir: PathBuf,
    /// When journal appends reach stable storage.
    pub fsync: FsyncPolicy,
    /// Checkpoint after this many applied records (bounds journal
    /// length and replay work).
    pub checkpoint_every: u64,
}

impl DurabilityOptions {
    /// Defaults: batch fsync, checkpoint every 256 applied records.
    pub fn new(state_dir: impl Into<PathBuf>) -> Self {
        DurabilityOptions {
            state_dir: state_dir.into(),
            fsync: FsyncPolicy::Batch,
            checkpoint_every: 256,
        }
    }
}

/// The daemon state: a monotonically-ided session table plus the
/// hardening limits ([`ServerLimits`]) and, when opened durable, the
/// write-ahead journal.
pub struct Server {
    sessions: BTreeMap<u64, Session>,
    next_id: u64,
    limits: ServerLimits,
    clock: Clock,
    /// Present when the server persists to a `--state-dir`.
    journal: Option<Journal>,
    /// What startup recovery found (durable servers only).
    recovery: Option<RecoveryStats>,
    /// Journal faults hit where no reply could carry them (eviction);
    /// surfaced through `daemon.info`.
    journal_errors: u64,
}

impl Default for Server {
    fn default() -> Self {
        Server::new()
    }
}

impl Server {
    /// An empty session table with default limits and the wall clock.
    pub fn new() -> Self {
        Server::with_limits(ServerLimits::default())
    }

    /// An empty session table with explicit limits and the wall clock.
    pub fn with_limits(limits: ServerLimits) -> Self {
        Server {
            sessions: BTreeMap::new(),
            next_id: 0,
            limits,
            clock: Clock::Wall(Instant::now()),
            journal: None,
            recovery: None,
            journal_errors: 0,
        }
    }

    /// An empty session table whose clock only moves via
    /// [`Server::advance_clock_ms`] — deterministic `idle_ms` and
    /// timeouts for tests and golden transcripts.
    pub fn frozen(limits: ServerLimits) -> Self {
        Server {
            sessions: BTreeMap::new(),
            next_id: 0,
            limits,
            clock: Clock::Manual(0),
            journal: None,
            recovery: None,
            journal_errors: 0,
        }
    }

    /// Opens (or creates) a durable server on `opts.state_dir`:
    /// recovers whatever the journal and checkpoint describe, then
    /// journals every state-mutating request from here on.
    ///
    /// Recovery never refuses to start over bad content: a torn or
    /// corrupt journal tail is truncated at the first bad line, a
    /// corrupt checkpoint is ignored, and a session whose spec can no
    /// longer be built is dropped (all counted in [`RecoveryStats`]).
    /// Recovered sessions bypass `max_sessions`/`max_n` — caps gate
    /// *admission*, and these sessions were already admitted.
    ///
    /// With `frozen` the recovered server uses the manual test clock.
    pub fn open_durable(
        opts: &DurabilityOptions,
        limits: ServerLimits,
        frozen: bool,
    ) -> io::Result<Server> {
        let state = journal::load_state(&opts.state_dir)?;
        let mut server = if frozen {
            Server::frozen(limits)
        } else {
            Server::with_limits(limits)
        };
        let mut stats = RecoveryStats {
            truncated_bytes: state.truncated_bytes,
            from_checkpoint: state.checkpoint.is_some(),
            ..RecoveryStats::default()
        };

        if let Some(ckpt) = &state.checkpoint {
            server.next_id = ckpt.next_id;
            for cs in &ckpt.sessions {
                match rebuild_session(&cs.params, cs.round, &mut stats) {
                    Some(mut session) => {
                        // The checkpoint's snapshot is the recovery
                        // anchor: a byte-exact match proves the rebuilt
                        // session is the one that was checkpointed. On
                        // mismatch the recomputed state wins (it is what
                        // this build deterministically produces) and the
                        // discrepancy is surfaced via daemon.info.
                        if render(&session.snapshot.to_json()) != render(&cs.snapshot) {
                            stats.snapshot_mismatches += 1;
                        }
                        session.poisoned = cs.poisoned.clone();
                        server.sessions.insert(cs.session, session);
                    }
                    None => stats.failed_sessions += 1,
                }
            }
        }

        for record in &state.records {
            match &record.body {
                RecordBody::CreateApplied { session, params } => {
                    stats.replayed_records += 1;
                    match rebuild_session(params, 0, &mut stats) {
                        Some(s) => {
                            server.sessions.insert(*session, s);
                        }
                        None => stats.failed_sessions += 1,
                    }
                    server.next_id = server.next_id.max(*session);
                }
                RecordBody::StepApplied { session, stepped } => {
                    stats.replayed_records += 1;
                    let Some(s) = server.sessions.get_mut(session) else {
                        continue;
                    };
                    if s.poisoned.is_some() {
                        continue;
                    }
                    // Re-execute exactly the rounds the live run
                    // committed, round by round like the live loop —
                    // byte-identical by the facade's stepping
                    // discipline. A panic here means the session's code
                    // is no longer deterministic w.r.t. the journal;
                    // drop it rather than fail recovery.
                    let replayed = catch_unwind(AssertUnwindSafe(|| {
                        for _ in 0..*stepped {
                            if s.exec.step_rounds(1).is_some() {
                                break;
                            }
                        }
                        s.exec.snapshot()
                    }));
                    match replayed {
                        Ok(snapshot) => {
                            stats.replayed_rounds += snapshot.round - s.snapshot.round;
                            s.snapshot = snapshot;
                        }
                        Err(_) => {
                            server.sessions.remove(session);
                            stats.failed_sessions += 1;
                        }
                    }
                }
                RecordBody::CloseApplied { session } | RecordBody::Evict { session } => {
                    stats.replayed_records += 1;
                    server.sessions.remove(session);
                }
                RecordBody::Poison { session, message } => {
                    stats.replayed_records += 1;
                    if let Some(s) = server.sessions.get_mut(session) {
                        s.poisoned = Some(message.clone());
                    }
                }
                RecordBody::CreateIntent { .. }
                | RecordBody::StepIntent { .. }
                | RecordBody::CloseIntent { .. } => {}
            }
        }

        stats.recovered_sessions = server.sessions.len();
        let now = server.clock.now_ms();
        for s in server.sessions.values_mut() {
            s.recovered = true;
            s.last_touch_ms = now;
        }
        server.journal = Some(Journal::open(
            &opts.state_dir,
            opts.fsync,
            opts.checkpoint_every,
            state.next_lsn,
            state.clean_len,
            stats.replayed_records,
        )?);
        server.recovery = Some(stats);
        Ok(server)
    }

    /// What startup recovery found, if this server was opened durable.
    pub fn recovery_stats(&self) -> Option<&RecoveryStats> {
        self.recovery.as_ref()
    }

    /// Advances a frozen clock (no-op under the wall clock).
    pub fn advance_clock_ms(&mut self, ms: u64) {
        if let Clock::Manual(now) = &mut self.clock {
            *now += ms;
        }
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Handles one request line and renders the one response line (no
    /// trailing newline). Never panics on input: malformed lines become
    /// structured `parse-error`/`bad-request` replies, and panicking
    /// session code becomes a `session-poisoned` reply.
    pub fn handle_line(&mut self, line: &str) -> String {
        self.evict_idle();
        let json = match Json::parse(line) {
            Ok(json) => json,
            Err(e) => {
                return Response::err(None, ErrorCode::ParseError, e.to_string()).render_line()
            }
        };
        let request = match Request::from_json(&json) {
            Ok(request) => request,
            Err(e) => {
                // Salvage the id when the object carried a usable one, so
                // a scripted client can still correlate the failure.
                let id = json
                    .get("id")
                    .and_then(Json::as_num)
                    .and_then(|n| n.as_u64());
                return Response::err(id, ErrorCode::BadRequest, e.to_string()).render_line();
            }
        };
        let id = request.id;
        match self.dispatch(&request) {
            Ok(result) => Response::ok(id, result),
            Err(error) => Response {
                id: Some(id),
                body: Err(error),
            },
        }
        .render_line()
    }

    fn dispatch(&mut self, request: &Request) -> Result<Json, WireError> {
        match request.method.as_str() {
            "session.create" => self.create(&request.params),
            "session.step" => self.step(&request.params),
            "session.query" => self.query(&request.params),
            "session.list" => Ok(self.list()),
            "session.close" => self.close(&request.params),
            "daemon.info" => Ok(self.info()),
            other => Err(WireError {
                code: ErrorCode::UnknownMethod,
                message: format!("unknown method '{other}'"),
            }),
        }
    }

    fn evict_idle(&mut self) {
        let timeout = self.limits.idle_timeout_ms;
        if timeout == 0 || self.sessions.is_empty() {
            return;
        }
        let now = self.clock.now_ms();
        let evicted: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, s)| now.saturating_sub(s.last_touch_ms) >= timeout)
            .map(|(&id, _)| id)
            .collect();
        if evicted.is_empty() {
            return;
        }
        self.sessions.retain(|id, _| !evicted.contains(id));
        // Evictions happen before the triggering request is even
        // parsed, so there is no reply to carry a journal fault; log
        // best-effort and count failures for daemon.info.
        if self.journal.is_some() {
            for id in evicted {
                if self
                    .journal_append(RecordBody::Evict { session: id })
                    .is_err()
                {
                    self.journal_errors += 1;
                }
            }
            if let Some(journal) = &mut self.journal {
                if journal.commit_batch().is_err() {
                    self.journal_errors += 1;
                }
            }
        }
    }

    fn create(&mut self, params: &Json) -> Result<Json, WireError> {
        if self.sessions.len() >= self.limits.max_sessions {
            return Err(WireError {
                code: ErrorCode::ResourceLimit,
                message: format!(
                    "session table is full ({} live, limit {})",
                    self.sessions.len(),
                    self.limits.max_sessions
                ),
            });
        }
        let spec = SessionSpec::from_params(params).map_err(|e| WireError {
            code: ErrorCode::BadSpec,
            message: e.to_string(),
        })?;
        if spec.requested_n() > self.limits.max_n {
            return Err(WireError {
                code: ErrorCode::ResourceLimit,
                message: format!(
                    "n={} exceeds the per-session limit {}",
                    spec.requested_n(),
                    self.limits.max_n
                ),
            });
        }
        // Write-ahead: the intent record hits the journal before any
        // session code runs. A crash from here until the applied record
        // is durable leaves an intent with no applied — recovery
        // correctly treats the create as never having happened (the
        // client never got a reply).
        self.journal_append(RecordBody::CreateIntent {
            params: params.clone(),
        })?;
        // Session construction runs protocol factories: isolate panics so
        // a faulty protocol cannot take the daemon down. Nothing was
        // inserted yet, so a create panic leaves no poisoned slot behind.
        let built = catch_unwind(AssertUnwindSafe(|| {
            spec.build().map(|(exec, info)| {
                let snapshot = exec.snapshot();
                (exec, info, snapshot)
            })
        }))
        .map_err(|payload| WireError {
            code: ErrorCode::SessionPoisoned,
            message: format!(
                "session creation panicked: {}",
                panic_message(payload.as_ref())
            ),
        })?;
        let (exec, info, snapshot) = built.map_err(|e| WireError {
            code: ErrorCode::BadSpec,
            message: e.to_string(),
        })?;
        self.next_id += 1;
        let id = self.next_id;
        let result = Json::obj(vec![
            ("session", id.to_json()),
            ("spec", info.to_json()),
            ("snapshot", snapshot.to_json()),
        ]);
        self.sessions.insert(
            id,
            Session {
                info,
                exec,
                snapshot,
                params: params.clone(),
                last_touch_ms: self.clock.now_ms(),
                poisoned: None,
                recovered: false,
            },
        );
        self.journal_append(RecordBody::CreateApplied {
            session: id,
            params: params.clone(),
        })?;
        self.journal_commit()?;
        Ok(result)
    }

    fn step(&mut self, params: &Json) -> Result<Json, WireError> {
        let id = session_id(params)?;
        let rounds: u64 = opt_field(params, "rounds")
            .map_err(bad_request)?
            .unwrap_or(1);
        let clock = self.clock;
        let timeout = self.limits.step_timeout_ms;
        // Touch and gate first, journal the intent second, execute
        // third: the intent record must precede any session code, but
        // only for requests that will actually mutate.
        {
            let session = self.session_mut(id)?;
            session.last_touch_ms = clock.now_ms();
            if let Some(msg) = &session.poisoned {
                let msg = msg.clone();
                return Err(poisoned(id, &msg));
            }
        }
        self.journal_append(RecordBody::StepIntent {
            session: id,
            rounds,
        })?;
        let session = self
            .sessions
            .get_mut(&id)
            .expect("session checked just above");
        let before = session.exec.round();
        // Step round by round so the wall-clock deadline is checked
        // between rounds — byte-identical to one step_rounds(rounds)
        // call by the facade's stepping discipline. Panics inside
        // protocol code poison this session only.
        let started = clock.now_ms();
        let stepped = catch_unwind(AssertUnwindSafe(|| {
            let mut timed_out = false;
            for _ in 0..rounds {
                if timeout > 0 && clock.now_ms().saturating_sub(started) >= timeout {
                    timed_out = true;
                    break;
                }
                if session.exec.step_rounds(1).is_some() {
                    break;
                }
            }
            // A step batch is the only thing that can move the execution,
            // so this is the one place the query cache refreshes.
            (timed_out, session.exec.snapshot())
        }));
        match stepped {
            Ok((timed_out, snapshot)) => {
                session.snapshot = snapshot;
                let actually_stepped = session.snapshot.round - before;
                let mut pairs = vec![
                    ("session", id.to_json()),
                    ("stepped", actually_stepped.to_json()),
                    ("snapshot", session.snapshot.to_json()),
                ];
                if timed_out {
                    pairs.push(("timed_out", true.to_json()));
                }
                // The applied record carries the rounds that actually
                // ran (stop condition or timeout may have cut the
                // request short), so replay re-executes exactly the
                // committed work.
                self.journal_append(RecordBody::StepApplied {
                    session: id,
                    stepped: actually_stepped,
                })?;
                self.journal_commit()?;
                Ok(Json::obj(pairs))
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                session.poisoned = Some(msg.clone());
                // The poison is observable state (every later request on
                // this session errors), so it must recover too. The
                // execution is mid-round and unrecoverable, but also
                // unobservable: poisoned sessions refuse queries, and
                // the snapshot cache still holds the last committed
                // round — which is exactly what recovery rebuilds.
                let _ = self.journal_append(RecordBody::Poison {
                    session: id,
                    message: msg.clone(),
                });
                let _ = self.journal_commit();
                Err(poisoned(id, &msg))
            }
        }
    }

    fn query(&mut self, params: &Json) -> Result<Json, WireError> {
        let id = session_id(params)?;
        let with_nodes: bool = opt_field(params, "nodes")
            .map_err(bad_request)?
            .unwrap_or(false);
        let now = self.clock.now_ms();
        let session = self.session_mut(id)?;
        session.last_touch_ms = now;
        if let Some(msg) = &session.poisoned {
            return Err(poisoned(id, msg));
        }
        let mut pairs = vec![
            ("session", id.to_json()),
            ("snapshot", session.snapshot.to_json()),
        ];
        if with_nodes {
            // node_states re-reads protocol outputs, so it can run
            // arbitrary session code — same isolation as stepping.
            match catch_unwind(AssertUnwindSafe(|| session.exec.node_states())) {
                Ok(nodes) => pairs.push(("nodes", nodes.to_json())),
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    session.poisoned = Some(msg.clone());
                    // A query is a pure read, but the poison it just
                    // caused is durable state — journal it so recovery
                    // reproduces the refusal.
                    let _ = self.journal_append(RecordBody::Poison {
                        session: id,
                        message: msg.clone(),
                    });
                    let _ = self.journal_commit();
                    return Err(poisoned(id, &msg));
                }
            }
        }
        Ok(Json::obj(pairs))
    }

    fn list(&self) -> Json {
        let now = self.clock.now_ms();
        let sessions: Vec<Json> = self
            .sessions
            .iter()
            .map(|(&id, s)| {
                Json::obj(vec![
                    ("session", id.to_json()),
                    ("spec", s.info.to_json()),
                    ("rounds", s.snapshot.round.to_json()),
                    ("idle_ms", now.saturating_sub(s.last_touch_ms).to_json()),
                    ("poisoned", s.poisoned.is_some().to_json()),
                    ("recovered", s.recovered.to_json()),
                    ("stop", s.snapshot.stop.to_json()),
                ])
            })
            .collect();
        Json::obj(vec![("sessions", Json::Arr(sessions))])
    }

    fn close(&mut self, params: &Json) -> Result<Json, WireError> {
        let id = session_id(params)?;
        if !self.sessions.contains_key(&id) {
            return Err(unknown_session(id));
        }
        self.journal_append(RecordBody::CloseIntent { session: id })?;
        self.sessions.remove(&id);
        self.journal_append(RecordBody::CloseApplied { session: id })?;
        self.journal_commit()?;
        Ok(Json::obj(vec![
            ("session", id.to_json()),
            ("closed", true.to_json()),
        ]))
    }

    /// `daemon.info`: capability probing — protocol/version, feature
    /// list, limits, and (for durable servers) journal and recovery
    /// stats. Clients check `features` instead of guessing from errors.
    fn info(&self) -> Json {
        let mut features = vec![
            "fault-injection",
            "frozen-clock",
            "idle-eviction",
            "panic-isolation",
            "sessions",
            "step-timeouts",
        ];
        if self.journal.is_some() {
            features.push("durability");
            features.sort_unstable();
        }
        let limits = Json::obj(vec![
            ("max_sessions", self.limits.max_sessions.to_json()),
            ("max_n", self.limits.max_n.to_json()),
            ("step_timeout_ms", self.limits.step_timeout_ms.to_json()),
            ("idle_timeout_ms", self.limits.idle_timeout_ms.to_json()),
        ]);
        let journal = match &self.journal {
            Some(j) => Json::obj(vec![
                ("fsync", Json::Str(j.policy().label().to_owned())),
                ("lsn", (j.next_lsn() - 1).to_json()),
                (
                    "records_since_checkpoint",
                    j.applied_since_checkpoint().to_json(),
                ),
                ("checkpoint_every", j.checkpoint_every().to_json()),
                ("errors", self.journal_errors.to_json()),
            ]),
            None => Json::Null,
        };
        let recovery = match &self.recovery {
            Some(stats) => stats.to_json(),
            None => Json::Null,
        };
        Json::obj(vec![
            ("protocol", Json::Str(SCHEMA.to_owned())),
            ("version", Json::Str(env!("CARGO_PKG_VERSION").to_owned())),
            (
                "features",
                Json::Arr(
                    features
                        .into_iter()
                        .map(|f| Json::Str(f.to_owned()))
                        .collect(),
                ),
            ),
            ("limits", limits),
            ("sessions", self.sessions.len().to_json()),
            ("journal", journal),
            ("recovery", recovery),
        ])
    }

    fn session_mut(&mut self, id: u64) -> Result<&mut Session, WireError> {
        self.sessions
            .get_mut(&id)
            .ok_or_else(|| unknown_session(id))
    }

    /// Appends one record to the journal, if there is one. An append
    /// failure surfaces as an `internal-error` reply; for intents the
    /// mutation has not run yet, so the request is cleanly refused.
    fn journal_append(&mut self, body: RecordBody) -> Result<(), WireError> {
        let Some(journal) = &mut self.journal else {
            return Ok(());
        };
        journal.append(body).map(|_| ()).map_err(internal)
    }

    /// Ends the current request's journal batch: takes a checkpoint if
    /// one is due, then (under batch fsync) makes everything appended
    /// by this request durable — always before the reply goes out.
    fn journal_commit(&mut self) -> Result<(), WireError> {
        if self
            .journal
            .as_ref()
            .is_some_and(Journal::should_checkpoint)
        {
            let checkpoint = Checkpoint {
                // Everything up to the last appended record is folded in.
                lsn: self.journal.as_ref().expect("checked above").next_lsn() - 1,
                next_id: self.next_id,
                sessions: self
                    .sessions
                    .iter()
                    .map(|(&id, s)| CheckpointSession {
                        session: id,
                        params: s.params.clone(),
                        round: s.snapshot.round,
                        poisoned: s.poisoned.clone(),
                        snapshot: s.snapshot.to_json(),
                    })
                    .collect(),
            };
            let journal = self.journal.as_mut().expect("checked above");
            journal.write_checkpoint(&checkpoint).map_err(internal)?;
        }
        if let Some(journal) = &mut self.journal {
            journal.commit_batch().map_err(internal)?;
        }
        Ok(())
    }
}

/// Rebuilds one session from its `session.create` params and steps it
/// to `round` — the recovery workhorse. Returns `None` (and counts
/// nothing itself) if the spec no longer parses/builds or the rebuild
/// panics; the caller counts the failure.
fn rebuild_session(params: &Json, round: u64, stats: &mut RecoveryStats) -> Option<Session> {
    let spec = SessionSpec::from_params(params).ok()?;
    let rebuilt = catch_unwind(AssertUnwindSafe(|| {
        let (mut exec, info) = spec.build().ok()?;
        // step_rounds(round) lands on the same state as the live run's
        // round-by-round stepping, by the facade's discipline.
        if round > 0 {
            exec.step_rounds(round);
        }
        let snapshot = exec.snapshot();
        Some((exec, info, snapshot))
    }))
    .ok()
    .flatten()?;
    let (exec, info, snapshot) = rebuilt;
    stats.replayed_rounds += snapshot.round;
    Some(Session {
        info,
        exec,
        snapshot,
        params: params.clone(),
        last_touch_ms: 0,
        poisoned: None,
        recovered: true,
    })
}

/// Renders JSON for byte-comparison (anchor checks); non-finite numbers
/// cannot occur in snapshots, so rendering cannot fail.
fn render(json: &Json) -> String {
    json.render().unwrap_or_default()
}

fn session_id(params: &Json) -> Result<u64, WireError> {
    field(params, "session").map_err(bad_request)
}

fn bad_request(e: bcount_json::JsonError) -> WireError {
    WireError {
        code: ErrorCode::BadRequest,
        message: e.to_string(),
    }
}

fn unknown_session(id: u64) -> WireError {
    WireError {
        code: ErrorCode::UnknownSession,
        message: format!("no session {id}"),
    }
}

fn poisoned(id: u64, msg: &str) -> WireError {
    WireError {
        code: ErrorCode::SessionPoisoned,
        message: format!("session {id} is poisoned: {msg}"),
    }
}

fn internal(e: io::Error) -> WireError {
    WireError {
        code: ErrorCode::Internal,
        message: format!("journal I/O failed: {e}"),
    }
}

/// Extracts the human-readable message from a panic payload (panics via
/// `panic!("...")` carry `&str` or `String`; anything else is opaque).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

//! The session table and request dispatcher behind `bcountd`.
//!
//! A [`Server`] owns every live session: a type-erased
//! [`DynExecution`](bcount_sim::DynExecution) plus its cached
//! [`ExecutionSnapshot`]. The cache is refreshed only when a
//! `session.step` actually advances the execution, so `session.query`
//! is a pure read — any number of queries between steps cost one cached
//! clone each and never touch (let alone perturb) the round loop.
//!
//! [`Server::handle_line`] is the whole protocol: one request line in,
//! one response line out, errors included. Transport loops (stdin, unix
//! socket, tests) just move lines.

use std::collections::BTreeMap;

use bcount_json::{field, opt_field, FromJson, Json, ToJson};
use bcount_sim::{DynExecution, ExecutionSnapshot};

use crate::spec::{SessionInfo, SessionSpec};
use crate::wire::{ErrorCode, Request, Response, WireError};

/// One live session.
struct Session {
    info: SessionInfo,
    exec: Box<dyn DynExecution>,
    /// Snapshot taken after the last step batch (or at creation);
    /// queries are served from this cache.
    snapshot: ExecutionSnapshot,
}

/// The daemon state: a monotonically-ided session table.
#[derive(Default)]
pub struct Server {
    sessions: BTreeMap<u64, Session>,
    next_id: u64,
}

impl Server {
    /// An empty session table.
    pub fn new() -> Self {
        Server::default()
    }

    /// Number of live sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Handles one request line and renders the one response line (no
    /// trailing newline). Never panics on input: malformed lines become
    /// structured `parse-error`/`bad-request` replies.
    pub fn handle_line(&mut self, line: &str) -> String {
        let json = match Json::parse(line) {
            Ok(json) => json,
            Err(e) => {
                return Response::err(None, ErrorCode::ParseError, e.to_string()).render_line()
            }
        };
        let request = match Request::from_json(&json) {
            Ok(request) => request,
            Err(e) => {
                // Salvage the id when the object carried a usable one, so
                // a scripted client can still correlate the failure.
                let id = json
                    .get("id")
                    .and_then(Json::as_num)
                    .and_then(|n| n.as_u64());
                return Response::err(id, ErrorCode::BadRequest, e.to_string()).render_line();
            }
        };
        let id = request.id;
        match self.dispatch(&request) {
            Ok(result) => Response::ok(id, result),
            Err(error) => Response {
                id: Some(id),
                body: Err(error),
            },
        }
        .render_line()
    }

    fn dispatch(&mut self, request: &Request) -> Result<Json, WireError> {
        match request.method.as_str() {
            "session.create" => self.create(&request.params),
            "session.step" => self.step(&request.params),
            "session.query" => self.query(&request.params),
            "session.list" => Ok(self.list()),
            "session.close" => self.close(&request.params),
            other => Err(WireError {
                code: ErrorCode::UnknownMethod,
                message: format!("unknown method '{other}'"),
            }),
        }
    }

    fn create(&mut self, params: &Json) -> Result<Json, WireError> {
        let spec = SessionSpec::from_params(params).map_err(|e| WireError {
            code: ErrorCode::BadSpec,
            message: e.to_string(),
        })?;
        let (exec, info) = spec.build().map_err(|e| WireError {
            code: ErrorCode::BadSpec,
            message: e.to_string(),
        })?;
        self.next_id += 1;
        let id = self.next_id;
        let snapshot = exec.snapshot();
        let result = Json::obj(vec![
            ("session", id.to_json()),
            ("spec", info.to_json()),
            ("snapshot", snapshot.to_json()),
        ]);
        self.sessions.insert(
            id,
            Session {
                info,
                exec,
                snapshot,
            },
        );
        Ok(result)
    }

    fn step(&mut self, params: &Json) -> Result<Json, WireError> {
        let id = session_id(params)?;
        let rounds: u64 = opt_field(params, "rounds")
            .map_err(bad_request)?
            .unwrap_or(1);
        let session = self.session_mut(id)?;
        let before = session.exec.round();
        session.exec.step_rounds(rounds);
        // A step batch is the only thing that can move the execution, so
        // this is the one place the query cache refreshes.
        session.snapshot = session.exec.snapshot();
        Ok(Json::obj(vec![
            ("session", id.to_json()),
            ("stepped", (session.snapshot.round - before).to_json()),
            ("snapshot", session.snapshot.to_json()),
        ]))
    }

    fn query(&mut self, params: &Json) -> Result<Json, WireError> {
        let id = session_id(params)?;
        let with_nodes: bool = opt_field(params, "nodes")
            .map_err(bad_request)?
            .unwrap_or(false);
        let session = self.session_mut(id)?;
        let mut pairs = vec![
            ("session", id.to_json()),
            ("snapshot", session.snapshot.to_json()),
        ];
        if with_nodes {
            pairs.push(("nodes", session.exec.node_states().to_json()));
        }
        Ok(Json::obj(pairs))
    }

    fn list(&self) -> Json {
        let sessions: Vec<Json> = self
            .sessions
            .iter()
            .map(|(&id, s)| {
                Json::obj(vec![
                    ("session", id.to_json()),
                    ("spec", s.info.to_json()),
                    ("round", s.snapshot.round.to_json()),
                    ("stop", s.snapshot.stop.to_json()),
                ])
            })
            .collect();
        Json::obj(vec![("sessions", Json::Arr(sessions))])
    }

    fn close(&mut self, params: &Json) -> Result<Json, WireError> {
        let id = session_id(params)?;
        if self.sessions.remove(&id).is_none() {
            return Err(unknown_session(id));
        }
        Ok(Json::obj(vec![
            ("session", id.to_json()),
            ("closed", true.to_json()),
        ]))
    }

    fn session_mut(&mut self, id: u64) -> Result<&mut Session, WireError> {
        self.sessions
            .get_mut(&id)
            .ok_or_else(|| unknown_session(id))
    }
}

fn session_id(params: &Json) -> Result<u64, WireError> {
    field(params, "session").map_err(bad_request)
}

fn bad_request(e: bcount_json::JsonError) -> WireError {
    WireError {
        code: ErrorCode::BadRequest,
        message: e.to_string(),
    }
}

fn unknown_session(id: u64) -> WireError {
    WireError {
        code: ErrorCode::UnknownSession,
        message: format!("no session {id}"),
    }
}

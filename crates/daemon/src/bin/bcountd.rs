//! `bcountd` — the counting service's transport loop.
//!
//! Speaks `bcountd/v1` (line-delimited JSON; see the crate docs and the
//! README's schema table) over stdin/stdout by default, or over a unix
//! socket with `--socket PATH` (connections are served sequentially and
//! share one session table, so a session created over one connection
//! can be stepped from the next).

use std::io::{BufRead, BufReader, Write};

use bcount_daemon::Server;

const USAGE: &str = "usage: bcountd [--socket PATH]

Long-lived counting service speaking bcountd/v1 (line-delimited JSON)
over stdin/stdout, or over a unix socket with --socket.";

fn main() {
    let mut args = std::env::args().skip(1);
    let mut socket: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => match args.next() {
                Some(path) => socket = Some(path),
                None => die("--socket requires a path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown argument '{other}'")),
        }
    }

    let mut server = Server::new();
    let result = match socket {
        Some(path) => serve_socket(&path, &mut server),
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            serve(stdin.lock(), stdout.lock(), &mut server)
        }
    };
    if let Err(e) = result {
        die(&format!("i/o error: {e}"));
    }
}

fn die(msg: &str) -> ! {
    eprintln!("bcountd: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

/// One request line in, one response line out, flushed per line so a
/// scripted client can interleave reads with writes.
fn serve(reader: impl BufRead, mut writer: impl Write, server: &mut Server) -> std::io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        writeln!(writer, "{}", server.handle_line(&line))?;
        writer.flush()?;
    }
    Ok(())
}

#[cfg(unix)]
fn serve_socket(path: &str, server: &mut Server) -> std::io::Result<()> {
    use std::os::unix::net::UnixListener;

    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    eprintln!("bcountd: listening on {path}");
    for stream in listener.incoming() {
        let stream = stream?;
        let writer = stream.try_clone()?;
        // A client hanging up mid-line is a normal disconnect, not a
        // daemon failure; sessions outlive the connection.
        if let Err(e) = serve(BufReader::new(stream), writer, server) {
            eprintln!("bcountd: connection error: {e}");
        }
    }
    Ok(())
}

#[cfg(not(unix))]
fn serve_socket(_path: &str, _server: &mut Server) -> std::io::Result<()> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "--socket requires a unix platform",
    ))
}

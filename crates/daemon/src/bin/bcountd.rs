//! `bcountd` — the counting service's transport loop.
//!
//! Speaks `bcountd/v1` (line-delimited JSON; see the crate docs and the
//! README's schema table) over stdin/stdout by default, or over a unix
//! socket with `--socket PATH` (connections are served sequentially and
//! share one session table, so a session created over one connection
//! can be stepped from the next).
//!
//! Hardening flags tune the [`ServerLimits`]; `--frozen-clock` pins the
//! server clock to a manual counter so transcripts that include
//! `idle_ms` fields are byte-stable (the golden CI transcripts use it).
//! SIGTERM/SIGINT request a graceful shutdown: the in-flight request
//! finishes and its reply is flushed before the process exits.

use std::io::BufReader;

use bcount_daemon::server::ServerLimits;
use bcount_daemon::{serve_graceful, Server};

const USAGE: &str = "usage: bcountd [--socket PATH] [--max-sessions N] [--max-n N]
               [--step-timeout-ms MS] [--idle-timeout-ms MS] [--frozen-clock]

Long-lived counting service speaking bcountd/v1 (line-delimited JSON)
over stdin/stdout, or over a unix socket with --socket.

  --max-sessions N      live-session cap (default 256)
  --max-n N             per-session node cap (default 1048576)
  --step-timeout-ms MS  wall-clock budget per session.step; 0 disables
                        (default 30000)
  --idle-timeout-ms MS  evict sessions idle this long; 0 disables
                        (default 900000)
  --frozen-clock        pin the server clock (deterministic idle_ms /
                        timeouts, for golden transcripts)";

/// Shutdown flag set by the SIGTERM/SIGINT handler (or never, on
/// platforms without signals).
static SHUTDOWN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

#[cfg(unix)]
mod sig {
    use std::sync::atomic::Ordering;

    extern "C" fn on_term(_signum: i32) {
        // Only async-signal-safe work here: flip the flag; the serve
        // loop notices within one poll tick.
        super::SHUTDOWN.store(true, Ordering::SeqCst);
    }

    /// Installs the handler for SIGTERM and SIGINT via the C `signal`
    /// entry point (no libc crate dependency; the handler address is an
    /// `extern "C" fn(i32)` exactly as the ABI expects).
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_term as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut socket: Option<String> = None;
    let mut limits = ServerLimits::default();
    let mut frozen = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => match args.next() {
                Some(path) => socket = Some(path),
                None => die("--socket requires a path"),
            },
            "--max-sessions" => limits.max_sessions = num_arg(&mut args, "--max-sessions"),
            "--max-n" => limits.max_n = num_arg(&mut args, "--max-n"),
            "--step-timeout-ms" => limits.step_timeout_ms = num_arg(&mut args, "--step-timeout-ms"),
            "--idle-timeout-ms" => limits.idle_timeout_ms = num_arg(&mut args, "--idle-timeout-ms"),
            "--frozen-clock" => frozen = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown argument '{other}'")),
        }
    }

    sig::install();
    let mut server = if frozen {
        Server::frozen(limits)
    } else {
        Server::with_limits(limits)
    };
    let result = match socket {
        Some(path) => serve_socket(&path, &mut server),
        None => {
            // Stdin is moved into the transport's reader thread (locking
            // happens per read), so blocking reads never hold up the
            // shutdown flag check.
            let reader = BufReader::new(std::io::stdin());
            serve_graceful(reader, std::io::stdout().lock(), &mut server, &SHUTDOWN)
        }
    };
    if let Err(e) = result {
        die(&format!("i/o error: {e}"));
    }
}

fn die(msg: &str) -> ! {
    eprintln!("bcountd: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn num_arg<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    match args.next().and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => die(&format!("{flag} requires a number")),
    }
}

#[cfg(unix)]
fn serve_socket(path: &str, server: &mut Server) -> std::io::Result<()> {
    use std::os::unix::net::UnixListener;
    use std::sync::atomic::Ordering;

    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    // Nonblocking accept so SIGTERM between connections is honored
    // within one tick rather than waiting for the next client.
    listener.set_nonblocking(true)?;
    eprintln!("bcountd: listening on {path}");
    loop {
        if SHUTDOWN.load(Ordering::SeqCst) {
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                stream.set_nonblocking(false)?;
                let writer = stream.try_clone()?;
                // A client hanging up mid-line is a normal disconnect,
                // not a daemon failure; sessions outlive the connection.
                if let Err(e) = serve_graceful(BufReader::new(stream), writer, server, &SHUTDOWN) {
                    eprintln!("bcountd: connection error: {e}");
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(not(unix))]
fn serve_socket(_path: &str, _server: &mut Server) -> std::io::Result<()> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "--socket requires a unix platform",
    ))
}

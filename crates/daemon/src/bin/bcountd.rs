//! `bcountd` — the counting service's transport loop.
//!
//! Speaks `bcountd/v1` (line-delimited JSON; see the crate docs and the
//! README's schema table) over stdin/stdout by default, or over a unix
//! socket with `--socket PATH` (connections are served sequentially and
//! share one session table, so a session created over one connection
//! can be stepped from the next).
//!
//! Hardening flags tune the [`ServerLimits`]; `--frozen-clock` pins the
//! server clock to a manual counter so transcripts that include
//! `idle_ms` fields are byte-stable (the golden CI transcripts use it).
//! `--state-dir` turns on the durability plane: every state-mutating
//! request is journaled write-ahead, and a restart with the same dir
//! recovers every session byte-identically (see the README's
//! "Durability & recovery" section).
//!
//! SIGTERM/SIGINT request a graceful shutdown: the handler writes one
//! byte down a self-pipe (the only async-signal-safe option), a watcher
//! thread turns that into a [`Shutdown::request`], and the serve loop —
//! blocked on its event channel, not a poll tick — wakes immediately,
//! finishes the in-flight request, flushes its reply, and exits.

use std::io::BufReader;

use bcount_daemon::server::{DurabilityOptions, ServerLimits};
use bcount_daemon::{serve_graceful, FsyncPolicy, Server, Shutdown};

const USAGE: &str = "usage: bcountd [--socket PATH] [--max-sessions N] [--max-n N]
               [--step-timeout-ms MS] [--idle-timeout-ms MS] [--frozen-clock]
               [--state-dir PATH] [--fsync always|batch|off] [--checkpoint-every N]

Long-lived counting service speaking bcountd/v1 (line-delimited JSON)
over stdin/stdout, or over a unix socket with --socket.

  --max-sessions N      live-session cap (default 256)
  --max-n N             per-session node cap (default 1048576)
  --step-timeout-ms MS  wall-clock budget per session.step; 0 disables
                        (default 30000)
  --idle-timeout-ms MS  evict sessions idle this long; 0 disables
                        (default 900000)
  --frozen-clock        pin the server clock (deterministic idle_ms /
                        timeouts, for golden transcripts)
  --state-dir PATH      journal every state-mutating request under PATH
                        and recover all sessions on restart
  --fsync POLICY        when journal appends reach disk: always (every
                        record), batch (once per request; default), off
  --checkpoint-every N  checkpoint after N applied records (bounds
                        journal length and replay time; default 256)";

/// The process-wide shutdown signal, requested by the signal watcher
/// thread (or never, on platforms without signals).
static SHUTDOWN: Shutdown = Shutdown::new();

#[cfg(unix)]
mod sig {
    /// Self-pipe file descriptors: `[read, write]`, filled by
    /// `install()` before the handler can fire.
    static mut PIPE_FDS: [i32; 2] = [-1, -1];

    extern "C" {
        fn pipe(fds: *mut i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_term(_signum: i32) {
        // Only async-signal-safe work here: one byte down the self-pipe.
        // Shutdown::request() locks a mutex, so it must NOT be called
        // from a handler; the watcher thread does it.
        unsafe {
            let fd = PIPE_FDS[1];
            if fd >= 0 {
                let byte = 1u8;
                let _ = write(fd, &byte, 1);
            }
        }
    }

    /// Installs the SIGTERM/SIGINT handler and the watcher thread that
    /// converts the self-pipe byte into a `Shutdown::request()` (which
    /// wakes blocked serve loops immediately).
    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let read_fd = unsafe {
            let mut fds = [-1i32; 2];
            if pipe(fds.as_mut_ptr()) != 0 {
                // No pipe, no graceful shutdown — degrade to running
                // without signal handling rather than failing startup.
                return;
            }
            PIPE_FDS = fds;
            let handler = on_term as extern "C" fn(i32) as usize;
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
            fds[0]
        };
        std::thread::spawn(move || {
            let mut byte = 0u8;
            loop {
                let n = unsafe { read(read_fd, &mut byte, 1) };
                if n > 0 {
                    super::SHUTDOWN.request();
                } else if n == 0 {
                    return;
                }
                // n < 0 is EINTR or similar: retry.
            }
        });
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut socket: Option<String> = None;
    let mut limits = ServerLimits::default();
    let mut frozen = false;
    let mut state_dir: Option<String> = None;
    let mut fsync = FsyncPolicy::Batch;
    let mut checkpoint_every: u64 = 256;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => match args.next() {
                Some(path) => socket = Some(path),
                None => die("--socket requires a path"),
            },
            "--max-sessions" => limits.max_sessions = num_arg(&mut args, "--max-sessions"),
            "--max-n" => limits.max_n = num_arg(&mut args, "--max-n"),
            "--step-timeout-ms" => limits.step_timeout_ms = num_arg(&mut args, "--step-timeout-ms"),
            "--idle-timeout-ms" => limits.idle_timeout_ms = num_arg(&mut args, "--idle-timeout-ms"),
            "--frozen-clock" => frozen = true,
            "--state-dir" => match args.next() {
                Some(path) => state_dir = Some(path),
                None => die("--state-dir requires a path"),
            },
            "--fsync" => match args.next().as_deref().and_then(FsyncPolicy::parse) {
                Some(policy) => fsync = policy,
                None => die("--fsync requires one of: always, batch, off"),
            },
            "--checkpoint-every" => checkpoint_every = num_arg(&mut args, "--checkpoint-every"),
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => die(&format!("unknown argument '{other}'")),
        }
    }

    sig::install();
    let mut server = match &state_dir {
        Some(dir) => {
            let opts = DurabilityOptions {
                state_dir: dir.into(),
                fsync,
                checkpoint_every,
            };
            match Server::open_durable(&opts, limits, frozen) {
                Ok(server) => {
                    if let Some(stats) = server.recovery_stats() {
                        eprintln!(
                            "bcountd: recovered {} session(s) from {dir} \
                             ({} record(s), {} round(s) replayed{}{})",
                            stats.recovered_sessions,
                            stats.replayed_records,
                            stats.replayed_rounds,
                            if stats.truncated_bytes > 0 {
                                format!(", {} torn byte(s) truncated", stats.truncated_bytes)
                            } else {
                                String::new()
                            },
                            if stats.failed_sessions > 0 {
                                format!(", {} session(s) unrecoverable", stats.failed_sessions)
                            } else {
                                String::new()
                            },
                        );
                    }
                    server
                }
                Err(e) => die(&format!("cannot open state dir {dir}: {e}")),
            }
        }
        None if frozen => Server::frozen(limits),
        None => Server::with_limits(limits),
    };
    let result = match socket {
        Some(path) => serve_socket(&path, &mut server),
        None => {
            // Stdin is moved into the transport's reader thread (locking
            // happens per read), so blocking reads never hold up
            // shutdown wake-ups.
            let reader = BufReader::new(std::io::stdin());
            serve_graceful(reader, std::io::stdout().lock(), &mut server, &SHUTDOWN)
        }
    };
    if let Err(e) = result {
        die(&format!("i/o error: {e}"));
    }
}

fn die(msg: &str) -> ! {
    eprintln!("bcountd: {msg}\n\n{USAGE}");
    std::process::exit(2);
}

fn num_arg<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    match args.next().and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => die(&format!("{flag} requires a number")),
    }
}

#[cfg(unix)]
fn serve_socket(path: &str, server: &mut Server) -> std::io::Result<()> {
    use std::os::unix::net::UnixListener;

    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    // Nonblocking accept so SIGTERM between connections is honored
    // within one tick rather than waiting for the next client.
    listener.set_nonblocking(true)?;
    eprintln!("bcountd: listening on {path}");
    loop {
        if SHUTDOWN.is_requested() {
            return Ok(());
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                stream.set_nonblocking(false)?;
                let writer = stream.try_clone()?;
                // A client hanging up mid-line is a normal disconnect,
                // not a daemon failure; sessions outlive the connection.
                if let Err(e) = serve_graceful(BufReader::new(stream), writer, server, &SHUTDOWN) {
                    eprintln!("bcountd: connection error: {e}");
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(25));
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(not(unix))]
fn serve_socket(_path: &str, _server: &mut Server) -> std::io::Result<()> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "--socket requires a unix platform",
    ))
}

//! `bcountd`: a long-lived counting service owning executions as
//! sessions.
//!
//! The repo's other binaries are batch: construct, run, print, exit.
//! This crate is the *service* surface the north star asks for — a
//! daemon that owns any number of concurrent executions (**sessions**)
//! and answers read queries against them while they run, round by
//! round. It is a thin shell over the redesigned embedding API in
//! [`bcount_sim::execution`]:
//!
//! * sessions are [`bcount_sim::DynExecution`] trait objects, so one
//!   table holds heterogeneous protocol × adversary × graph cells;
//! * stepping goes through the facade's stop-check-first discipline, so
//!   an execution driven by interleaved `session.step` requests
//!   finishes byte-identical to one `Execution::run` call;
//! * queries are served from a snapshot cached at the last step batch —
//!   reads are pure and never touch the round loop.
//!
//! The protocol (`bcountd/v1`, [`wire`]) is line-delimited JSON over
//! stdin/stdout or a unix socket; the [`spec`] module maps
//! `session.create` params — the scenario-matrix cell coordinates — to
//! live executions; [`server`] is the dispatcher. The `bcountd` binary
//! is a ~100-line transport loop around [`server::Server::handle_line`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod journal;
pub mod server;
pub mod spec;
pub mod transport;
pub mod wire;

pub use journal::{FsyncPolicy, Journal, RecoveryStats};
pub use server::{DurabilityOptions, Server, ServerLimits};
pub use spec::{SessionInfo, SessionSpec, SpecError};
pub use transport::{serve, serve_graceful, LineEvent, Shutdown, MAX_LINE_BYTES};
pub use wire::{ErrorCode, Request, Response, WireError, SCHEMA};

//! The `bcountd/v1` wire protocol: line-delimited JSON requests and
//! responses over [`bcount_json`].
//!
//! One request per line, one response line per request, always in order.
//! Requests carry a caller-chosen `id` echoed verbatim in the response,
//! a `method` string, and a `params` object (optional; defaults to
//! `{}`). Responses carry the `schema` tag, the echoed `id`, and exactly
//! one of `result` or `error`:
//!
//! ```text
//! → {"id":1,"method":"session.create","params":{"family":"cycle","n":64,"protocol":"geometric-max","seed":7}}
//! ← {"schema":"bcountd/v1","id":1,"result":{"session":1,...}}
//! → {"id":2,"method":"no.such.method"}
//! ← {"schema":"bcountd/v1","id":2,"error":{"code":"unknown-method","message":"unknown method 'no.such.method'"}}
//! ```
//!
//! A request line that is not valid JSON (or not an object) cannot echo
//! an id, so its error response carries `"id":null`. Malformed input
//! never kills the daemon: every defect maps to a structured error line
//! and the read loop continues.

use bcount_json::{field, opt_field, FromJson, Json, JsonError, ToJson};

/// The protocol identifier stamped on every response (and accepted,
/// optionally, on requests).
pub const SCHEMA: &str = "bcountd/v1";

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Caller-chosen correlation id, echoed in the response.
    pub id: u64,
    /// Method name, e.g. `"session.create"`.
    pub method: String,
    /// Method parameters; `Json::Obj` (empty when the line omits it).
    pub params: Json,
}

impl ToJson for Request {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str(SCHEMA.to_owned())),
            ("id", self.id.to_json()),
            ("method", self.method.to_json()),
            ("params", self.params.clone()),
        ])
    }
}

impl FromJson for Request {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        if !matches!(json, Json::Obj(_)) {
            return Err(JsonError::Shape("request must be a JSON object".into()));
        }
        if let Some(tag) = opt_field::<String>(json, "schema")? {
            if tag != SCHEMA {
                return Err(JsonError::Shape(format!(
                    "schema mismatch: found '{tag}', expected '{SCHEMA}'"
                )));
            }
        }
        let params = match json.get("params") {
            None | Some(Json::Null) => Json::Obj(Vec::new()),
            Some(p @ Json::Obj(_)) => p.clone(),
            Some(_) => {
                return Err(JsonError::Shape("field 'params': expected object".into()));
            }
        };
        Ok(Request {
            id: field(json, "id")?,
            method: field(json, "method")?,
            params,
        })
    }
}

/// Machine-readable error category in an error response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line was not valid JSON (or not an object).
    ParseError,
    /// The line was JSON but not a well-formed request, or `params` did
    /// not match the method's schema.
    BadRequest,
    /// The method name is not part of `bcountd/v1`.
    UnknownMethod,
    /// The referenced session id does not exist (never created, or
    /// already closed).
    UnknownSession,
    /// `session.create` parameters name an unsupported family, protocol,
    /// adversary, placement, or an incompatible combination.
    BadSpec,
    /// The referenced session panicked during a step or query and is
    /// poisoned: it keeps its slot (so the failure stays observable via
    /// `session.list`) but refuses to step or answer queries; close it.
    SessionPoisoned,
    /// The request would exceed a configured resource cap (session
    /// count, node count). Close sessions, or rerun bcountd with higher
    /// limits.
    ResourceLimit,
    /// The daemon itself failed while handling the request — e.g. a
    /// write-ahead journal append or fsync error under `--state-dir`.
    /// The request did not commit; retry after fixing the environment.
    Internal,
}

impl ErrorCode {
    /// The stable wire tag.
    pub fn tag(&self) -> &'static str {
        match self {
            ErrorCode::ParseError => "parse-error",
            ErrorCode::BadRequest => "bad-request",
            ErrorCode::UnknownMethod => "unknown-method",
            ErrorCode::UnknownSession => "unknown-session",
            ErrorCode::BadSpec => "bad-spec",
            ErrorCode::SessionPoisoned => "session-poisoned",
            ErrorCode::ResourceLimit => "resource-limit",
            ErrorCode::Internal => "internal-error",
        }
    }
}

impl ToJson for ErrorCode {
    fn to_json(&self) -> Json {
        Json::Str(self.tag().to_owned())
    }
}

impl FromJson for ErrorCode {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        match json.as_str() {
            Some("parse-error") => Ok(ErrorCode::ParseError),
            Some("bad-request") => Ok(ErrorCode::BadRequest),
            Some("unknown-method") => Ok(ErrorCode::UnknownMethod),
            Some("unknown-session") => Ok(ErrorCode::UnknownSession),
            Some("bad-spec") => Ok(ErrorCode::BadSpec),
            Some("session-poisoned") => Ok(ErrorCode::SessionPoisoned),
            Some("resource-limit") => Ok(ErrorCode::ResourceLimit),
            Some("internal-error") => Ok(ErrorCode::Internal),
            Some(other) => Err(JsonError::Shape(format!("unknown error code '{other}'"))),
            None => Err(JsonError::Shape("expected error-code string".into())),
        }
    }
}

/// The error half of a response.
#[derive(Debug, Clone, PartialEq)]
pub struct WireError {
    /// Machine-readable category.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ToJson for WireError {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("code", self.code.to_json()),
            ("message", self.message.to_json()),
        ])
    }
}

impl FromJson for WireError {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(WireError {
            code: field(json, "code")?,
            message: field(json, "message")?,
        })
    }
}

/// A response line: the echoed id (`None` when the request line could
/// not be parsed far enough to recover one) and either a result or an
/// error.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Echo of the request's id; `None` renders as `null`.
    pub id: Option<u64>,
    /// Exactly one of `result` / `error` on the wire.
    pub body: Result<Json, WireError>,
}

impl Response {
    /// A success response.
    pub fn ok(id: u64, result: Json) -> Self {
        Response {
            id: Some(id),
            body: Ok(result),
        }
    }

    /// An error response.
    pub fn err(id: Option<u64>, code: ErrorCode, message: impl Into<String>) -> Self {
        Response {
            id,
            body: Err(WireError {
                code,
                message: message.into(),
            }),
        }
    }

    /// Renders the single wire line (no trailing newline). Infallible in
    /// practice: every number the daemon emits is an integer or a finite
    /// raw estimate, but a defensive fallback line is substituted if a
    /// non-finite float ever reaches the writer.
    pub fn render_line(&self) -> String {
        self.to_json().render().unwrap_or_else(|_| {
            Response::err(
                self.id,
                ErrorCode::BadRequest,
                "internal: non-finite number in response",
            )
            .to_json()
            .render()
            .expect("fallback error response is always renderable")
        })
    }
}

impl ToJson for Response {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("schema", Json::Str(SCHEMA.to_owned())),
            ("id", self.id.to_json()),
        ];
        match &self.body {
            Ok(result) => pairs.push(("result", result.clone())),
            Err(e) => pairs.push(("error", e.to_json())),
        }
        Json::obj(pairs)
    }
}

impl FromJson for Response {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        bcount_json::check_schema(json, SCHEMA)?;
        let id: Option<u64> = field(json, "id")?;
        let body = match (json.get("result"), json.get("error")) {
            (Some(result), None) => Ok(result.clone()),
            (None, Some(error)) => Err(WireError::from_json(error)
                .map_err(|e| JsonError::Shape(format!("field 'error': {e}")))?),
            (Some(_), Some(_)) => {
                return Err(JsonError::Shape(
                    "response carries both 'result' and 'error'".into(),
                ))
            }
            (None, None) => {
                return Err(JsonError::Shape(
                    "response carries neither 'result' nor 'error'".into(),
                ))
            }
        };
        Ok(Response { id, body })
    }
}

//! The durability plane behind `bcountd --state-dir`: a CRC-framed
//! write-ahead journal plus snapshot-anchored checkpoints.
//!
//! # Why replay works
//!
//! The engine is deterministic to the byte: the same `session.create`
//! spec stepped the same number of rounds reaches the same state, no
//! matter how the rounds were batched (the facade's stepping
//! discipline). So the daemon never needs to serialize protocol
//! internals — the journal records *commands* (create/step/close), and
//! recovery re-executes them. A checkpoint compacts the log: it pins
//! the session table (spec params + committed round + cached snapshot)
//! at one log sequence number so recovery replays a single
//! `step_rounds(round)` per session instead of every historical step
//! record. Rounds are still re-executed — determinism is the state
//! store — but the journal stays bounded.
//!
//! # On-disk format
//!
//! Two files in the state dir:
//!
//! * `journal.log` — one record per line, `CCCCCCCC <json>\n` where
//!   `CCCCCCCC` is the lowercase-hex CRC-32 (IEEE) of everything after
//!   the single separating space. Records carry a strictly increasing
//!   `lsn`. Every state-mutating request appends an `intent` record
//!   *before* executing and an `applied` record (with the actual
//!   outcome, e.g. rounds really stepped under a timeout) after; only
//!   `applied` records replay, so a crash mid-request can never
//!   resurrect a half-applied step.
//! * `checkpoint.json` — a single CRC-framed line holding the
//!   checkpoint (written to a temp file, fsynced, renamed). After a
//!   successful checkpoint the journal is truncated; records whose
//!   `lsn` is at or below the checkpoint's are skipped on replay, so a
//!   crash between the rename and the truncate double-applies nothing.
//!
//! # Torn tails
//!
//! [`load_state`] accepts any prefix of a valid journal: the first
//! line that is incomplete, fails its CRC, breaks LSN monotonicity, or
//! does not parse ends the readable prefix, and everything from there
//! on is discarded (and truncated away before new appends). Recovery
//! never refuses to start; at worst it recovers less.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use bcount_json::{field, opt_field, FromJson, Json, JsonError, ToJson};

/// Journal file name inside the state dir.
pub const JOURNAL_FILE: &str = "journal.log";
/// Checkpoint file name inside the state dir.
pub const CHECKPOINT_FILE: &str = "checkpoint.json";
/// Schema tag on the checkpoint record.
pub const CHECKPOINT_SCHEMA: &str = "bcountd-checkpoint/v1";

/// When the journal is flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every record append: a reply implies both its
    /// intent and applied records are on disk. Two syncs per mutation.
    Always,
    /// One `fsync` per state-mutating request, after the applied record
    /// and before the reply: same reply-implies-durable guarantee, half
    /// the syncs. The default.
    #[default]
    Batch,
    /// Never `fsync` explicitly: appends reach the OS page cache only.
    /// A process crash (SIGKILL) loses nothing — the pages are the
    /// kernel's — but a *machine* crash can lose recent requests. The
    /// CRC framing keeps whatever survives prefix-consistent.
    Off,
}

impl FsyncPolicy {
    /// Parses the `--fsync` flag value.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "batch" => Some(FsyncPolicy::Batch),
            "off" => Some(FsyncPolicy::Off),
            _ => None,
        }
    }

    /// The stable flag/wire label.
    pub fn label(&self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::Batch => "batch",
            FsyncPolicy::Off => "off",
        }
    }
}

/// CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Frames a record payload as one journal line (with trailing newline).
fn frame_line(payload: &str) -> String {
    format!("{:08x} {payload}\n", crc32(payload.as_bytes()))
}

/// Unframes one line (without its newline): checks the CRC, returns the
/// payload. `None` on any defect — the caller treats that as the end of
/// the readable prefix.
fn unframe_line(line: &str) -> Option<&str> {
    let (crc_hex, payload) = line.split_once(' ')?;
    if crc_hex.len() != 8 {
        return None;
    }
    let want = u32::from_str_radix(crc_hex, 16).ok()?;
    (crc32(payload.as_bytes()) == want).then_some(payload)
}

/// What one journal record did. `*Intent` records are written before a
/// mutation executes and exist for write-ahead ordering and forensics;
/// only the applied variants replay.
#[derive(Debug, Clone, PartialEq)]
pub enum RecordBody {
    /// A `session.create` is about to run with these (validated) params.
    CreateIntent {
        /// The raw `session.create` params object.
        params: Json,
    },
    /// A session was created and inserted under `session`.
    CreateApplied {
        /// Assigned session id.
        session: u64,
        /// The raw `session.create` params object (replay rebuilds the
        /// execution from these through the same spec path).
        params: Json,
    },
    /// A `session.step` is about to run.
    StepIntent {
        /// Target session.
        session: u64,
        /// Requested round count (the applied record holds the actual).
        rounds: u64,
    },
    /// A step batch committed: the session advanced exactly `stepped`
    /// rounds (possibly fewer than requested — stop condition or step
    /// timeout).
    StepApplied {
        /// Target session.
        session: u64,
        /// Rounds actually executed.
        stepped: u64,
    },
    /// A `session.close` is about to run.
    CloseIntent {
        /// Target session.
        session: u64,
    },
    /// The session was removed by `session.close`.
    CloseApplied {
        /// Target session.
        session: u64,
    },
    /// The session was removed by idle eviction.
    Evict {
        /// Target session.
        session: u64,
    },
    /// Session code panicked; the session is poisoned from here on.
    Poison {
        /// Target session.
        session: u64,
        /// The panic message (replayed into `session-poisoned` replies).
        message: String,
    },
}

impl RecordBody {
    fn kind(&self) -> &'static str {
        match self {
            RecordBody::CreateIntent { .. }
            | RecordBody::StepIntent { .. }
            | RecordBody::CloseIntent { .. } => "intent",
            _ => "applied",
        }
    }

    fn op(&self) -> &'static str {
        match self {
            RecordBody::CreateIntent { .. } | RecordBody::CreateApplied { .. } => "create",
            RecordBody::StepIntent { .. } | RecordBody::StepApplied { .. } => "step",
            RecordBody::CloseIntent { .. } | RecordBody::CloseApplied { .. } => "close",
            RecordBody::Evict { .. } => "evict",
            RecordBody::Poison { .. } => "poison",
        }
    }

    /// Whether replay applies this record (vs. intent-only bookkeeping).
    pub fn is_applied(&self) -> bool {
        self.kind() == "applied"
    }
}

/// One journal record: a log sequence number plus its body.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Strictly increasing sequence number (across checkpoints too).
    pub lsn: u64,
    /// What happened.
    pub body: RecordBody,
}

impl ToJson for JournalRecord {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("lsn", self.lsn.to_json()),
            ("kind", Json::Str(self.body.kind().to_owned())),
            ("op", Json::Str(self.body.op().to_owned())),
        ];
        match &self.body {
            RecordBody::CreateIntent { params } => pairs.push(("params", params.clone())),
            RecordBody::CreateApplied { session, params } => {
                pairs.push(("session", session.to_json()));
                pairs.push(("params", params.clone()));
            }
            RecordBody::StepIntent { session, rounds } => {
                pairs.push(("session", session.to_json()));
                pairs.push(("rounds", rounds.to_json()));
            }
            RecordBody::StepApplied { session, stepped } => {
                pairs.push(("session", session.to_json()));
                pairs.push(("stepped", stepped.to_json()));
            }
            RecordBody::CloseIntent { session }
            | RecordBody::CloseApplied { session }
            | RecordBody::Evict { session } => pairs.push(("session", session.to_json())),
            RecordBody::Poison { session, message } => {
                pairs.push(("session", session.to_json()));
                pairs.push(("message", message.to_json()));
            }
        }
        Json::obj(pairs)
    }
}

impl FromJson for JournalRecord {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let lsn: u64 = field(json, "lsn")?;
        let kind: String = field(json, "kind")?;
        let op: String = field(json, "op")?;
        let intent = match kind.as_str() {
            "intent" => true,
            "applied" => false,
            other => return Err(JsonError::Shape(format!("unknown record kind '{other}'"))),
        };
        let params = || -> Result<Json, JsonError> {
            json.get("params")
                .cloned()
                .ok_or_else(|| JsonError::Shape("missing field 'params'".into()))
        };
        let body = match (op.as_str(), intent) {
            ("create", true) => RecordBody::CreateIntent { params: params()? },
            ("create", false) => RecordBody::CreateApplied {
                session: field(json, "session")?,
                params: params()?,
            },
            ("step", true) => RecordBody::StepIntent {
                session: field(json, "session")?,
                rounds: field(json, "rounds")?,
            },
            ("step", false) => RecordBody::StepApplied {
                session: field(json, "session")?,
                stepped: field(json, "stepped")?,
            },
            ("close", true) => RecordBody::CloseIntent {
                session: field(json, "session")?,
            },
            ("close", false) => RecordBody::CloseApplied {
                session: field(json, "session")?,
            },
            ("evict", false) => RecordBody::Evict {
                session: field(json, "session")?,
            },
            ("poison", false) => RecordBody::Poison {
                session: field(json, "session")?,
                message: field(json, "message")?,
            },
            (other, _) => {
                return Err(JsonError::Shape(format!(
                    "unknown record op '{other}' (kind '{kind}')"
                )))
            }
        };
        Ok(JournalRecord { lsn, body })
    }
}

/// One session row inside a [`Checkpoint`].
#[derive(Debug, Clone, PartialEq)]
pub struct CheckpointSession {
    /// Session id.
    pub session: u64,
    /// The raw `session.create` params (recovery rebuilds from these).
    pub params: Json,
    /// Committed round count (recovery replays `step_rounds(round)`).
    pub round: u64,
    /// Sticky poison message, if the session panicked before the
    /// checkpoint.
    pub poisoned: Option<String>,
    /// The cached [`ExecutionSnapshot`](bcount_sim::ExecutionSnapshot)
    /// as JSON — the recovery *anchor*: after replay the recomputed
    /// snapshot must render byte-identically, proving the recovered
    /// session is exact.
    pub snapshot: Json,
}

impl ToJson for CheckpointSession {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("session", self.session.to_json()),
            ("params", self.params.clone()),
            ("round", self.round.to_json()),
            ("poisoned", self.poisoned.to_json()),
            ("snapshot", self.snapshot.clone()),
        ])
    }
}

impl FromJson for CheckpointSession {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        Ok(CheckpointSession {
            session: field(json, "session")?,
            params: json
                .get("params")
                .cloned()
                .ok_or_else(|| JsonError::Shape("missing field 'params'".into()))?,
            round: field(json, "round")?,
            poisoned: opt_field(json, "poisoned")?,
            snapshot: json
                .get("snapshot")
                .cloned()
                .ok_or_else(|| JsonError::Shape("missing field 'snapshot'".into()))?,
        })
    }
}

/// A durable pin of the whole session table at one LSN.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Last LSN covered: journal records at or below this are already
    /// reflected here and are skipped on replay.
    pub lsn: u64,
    /// The server's id counter (so recovered daemons never reuse ids).
    pub next_id: u64,
    /// Every live session at checkpoint time.
    pub sessions: Vec<CheckpointSession>,
}

impl ToJson for Checkpoint {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::Str(CHECKPOINT_SCHEMA.to_owned())),
            ("lsn", self.lsn.to_json()),
            ("next_id", self.next_id.to_json()),
            ("sessions", self.sessions.to_json()),
        ])
    }
}

impl FromJson for Checkpoint {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        bcount_json::check_schema(json, CHECKPOINT_SCHEMA)?;
        Ok(Checkpoint {
            lsn: field(json, "lsn")?,
            next_id: field(json, "next_id")?,
            sessions: field(json, "sessions")?,
        })
    }
}

/// What recovery found and did, reported through `daemon.info`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryStats {
    /// Sessions live after recovery.
    pub recovered_sessions: usize,
    /// Applied journal records replayed (post-checkpoint).
    pub replayed_records: u64,
    /// Rounds re-executed during recovery (checkpoint restore + replay).
    pub replayed_rounds: u64,
    /// Journal bytes discarded as a torn/corrupt tail.
    pub truncated_bytes: u64,
    /// Whether a checkpoint seeded the recovery.
    pub from_checkpoint: bool,
    /// Recovered sessions whose recomputed snapshot did not match the
    /// checkpoint anchor byte-for-byte (0 unless the state dir was
    /// written by an incompatible build; the recomputed state wins).
    pub snapshot_mismatches: usize,
    /// Journaled sessions that could not be rebuilt (spec no longer
    /// parses or its construction panicked); they are dropped, not
    /// fatal.
    pub failed_sessions: usize,
}

impl ToJson for RecoveryStats {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("recovered_sessions", self.recovered_sessions.to_json()),
            ("replayed_records", self.replayed_records.to_json()),
            ("replayed_rounds", self.replayed_rounds.to_json()),
            ("truncated_bytes", self.truncated_bytes.to_json()),
            ("from_checkpoint", self.from_checkpoint.to_json()),
            ("snapshot_mismatches", self.snapshot_mismatches.to_json()),
            ("failed_sessions", self.failed_sessions.to_json()),
        ])
    }
}

/// Everything [`load_state`] reads out of a state dir.
#[derive(Debug, Default)]
pub struct LoadedState {
    /// The checkpoint, if a readable one exists.
    pub checkpoint: Option<Checkpoint>,
    /// Valid journal records *after* the checkpoint's LSN, in order.
    pub records: Vec<JournalRecord>,
    /// Bytes past the readable journal prefix (torn/corrupt tail).
    pub truncated_bytes: u64,
    /// Byte length of the readable journal prefix (the file is
    /// truncated to this before new appends).
    pub clean_len: u64,
    /// First LSN a new record may use.
    pub next_lsn: u64,
}

/// Reads the checkpoint and journal from `dir`, tolerating a missing
/// dir, missing files, and torn/corrupt tails. Never errors on content
/// — only on I/O faults that make the files unreadable outright.
pub fn load_state(dir: &Path) -> io::Result<LoadedState> {
    let mut state = LoadedState {
        next_lsn: 1,
        ..LoadedState::default()
    };

    let ckpt_path = dir.join(CHECKPOINT_FILE);
    if let Ok(text) = fs::read_to_string(&ckpt_path) {
        // One framed line; a torn or corrupt checkpoint is ignored
        // wholesale (the tmp+rename write makes that near-impossible).
        let line = text.lines().next().unwrap_or("");
        if let Some(payload) = unframe_line(line) {
            if let Ok(json) = Json::parse(payload) {
                if let Ok(ckpt) = Checkpoint::from_json(&json) {
                    state.next_lsn = ckpt.lsn + 1;
                    state.checkpoint = Some(ckpt);
                }
            }
        }
    }

    let journal_path = dir.join(JOURNAL_FILE);
    let bytes = match fs::read(&journal_path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let skip_at_or_below = state.checkpoint.as_ref().map_or(0, |c| c.lsn);
    let mut offset = 0usize;
    let mut prev_lsn = 0u64;
    while offset < bytes.len() {
        // A record line must be newline-terminated; an unterminated tail
        // is torn by construction (appends write line+\n in one call).
        let Some(nl) = bytes[offset..].iter().position(|&b| b == b'\n') else {
            break;
        };
        let line = match std::str::from_utf8(&bytes[offset..offset + nl]) {
            Ok(line) => line,
            Err(_) => break,
        };
        let Some(payload) = unframe_line(line) else {
            break;
        };
        let Ok(json) = Json::parse(payload) else {
            break;
        };
        let Ok(record) = JournalRecord::from_json(&json) else {
            break;
        };
        if record.lsn <= prev_lsn {
            break;
        }
        prev_lsn = record.lsn;
        state.next_lsn = record.lsn + 1;
        if record.lsn > skip_at_or_below {
            state.records.push(record);
        }
        offset += nl + 1;
    }
    state.clean_len = offset as u64;
    state.truncated_bytes = (bytes.len() - offset) as u64;
    Ok(state)
}

/// The open, append-only journal of a durable server.
pub struct Journal {
    dir: PathBuf,
    file: File,
    policy: FsyncPolicy,
    next_lsn: u64,
    /// Applied records since the last checkpoint (drives the trigger).
    applied_since_checkpoint: u64,
    /// Whether the current request appended anything not yet synced
    /// (drives the `Batch` policy's one-sync-per-request).
    batch_dirty: bool,
    checkpoint_every: u64,
}

impl Journal {
    /// Opens `dir`'s journal for appending at `next_lsn`, truncating the
    /// file to the readable prefix `clean_len` first (so a torn tail can
    /// never sit between old and new records). Creates the dir if
    /// missing. `applied_backlog` is the count of applied records
    /// already sitting in the journal past the checkpoint, so repeated
    /// crash/restart cycles still hit the checkpoint trigger instead of
    /// growing the log forever.
    pub fn open(
        dir: &Path,
        policy: FsyncPolicy,
        checkpoint_every: u64,
        next_lsn: u64,
        clean_len: u64,
        applied_backlog: u64,
    ) -> io::Result<Journal> {
        fs::create_dir_all(dir)?;
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            // The surviving clean prefix must be kept: recovery already
            // decided how much of the old log is trustworthy, and the
            // `set_len` below trims exactly to that.
            .truncate(false)
            .open(dir.join(JOURNAL_FILE))?;
        if file.metadata()?.len() != clean_len {
            file.set_len(clean_len)?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok(Journal {
            dir: dir.to_path_buf(),
            file,
            policy,
            next_lsn,
            applied_since_checkpoint: applied_backlog,
            batch_dirty: false,
            checkpoint_every: checkpoint_every.max(1),
        })
    }

    /// The fsync policy in force.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// The LSN the next record will take.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Applied records since the last checkpoint.
    pub fn applied_since_checkpoint(&self) -> u64 {
        self.applied_since_checkpoint
    }

    /// The checkpoint interval (in applied records).
    pub fn checkpoint_every(&self) -> u64 {
        self.checkpoint_every
    }

    /// Appends one record (write-ahead: call before mutating for
    /// intents, right after for applieds). Syncs immediately under
    /// [`FsyncPolicy::Always`].
    pub fn append(&mut self, body: RecordBody) -> io::Result<u64> {
        let lsn = self.next_lsn;
        let record = JournalRecord { lsn, body };
        let payload = record
            .to_json()
            .render()
            .expect("journal records contain no non-finite numbers");
        self.file.write_all(frame_line(&payload).as_bytes())?;
        self.next_lsn += 1;
        if record.body.is_applied() {
            self.applied_since_checkpoint += 1;
        }
        match self.policy {
            FsyncPolicy::Always => self.file.sync_data()?,
            FsyncPolicy::Batch => self.batch_dirty = true,
            FsyncPolicy::Off => {}
        }
        Ok(lsn)
    }

    /// Ends one request's append batch: under [`FsyncPolicy::Batch`]
    /// this is the single sync that makes the request durable before
    /// its reply goes out.
    pub fn commit_batch(&mut self) -> io::Result<()> {
        if self.batch_dirty {
            self.batch_dirty = false;
            self.file.sync_data()?;
        }
        Ok(())
    }

    /// Whether enough applied records accumulated to warrant a
    /// checkpoint.
    pub fn should_checkpoint(&self) -> bool {
        self.applied_since_checkpoint >= self.checkpoint_every
    }

    /// Durably writes `checkpoint` (tmp + fsync + rename) and truncates
    /// the journal. On success the log is one checkpoint file plus an
    /// empty journal; LSNs keep counting.
    pub fn write_checkpoint(&mut self, checkpoint: &Checkpoint) -> io::Result<()> {
        let payload = checkpoint
            .to_json()
            .render()
            .expect("checkpoints contain no non-finite numbers");
        let tmp = self.dir.join("checkpoint.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(frame_line(&payload).as_bytes())?;
            if self.policy != FsyncPolicy::Off {
                f.sync_data()?;
            }
        }
        fs::rename(&tmp, self.dir.join(CHECKPOINT_FILE))?;
        if self.policy != FsyncPolicy::Off {
            // Make the rename itself durable; harmless no-op where
            // directories cannot be fsynced.
            if let Ok(d) = File::open(&self.dir) {
                let _ = d.sync_all();
            }
        }
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        if self.policy != FsyncPolicy::Off {
            self.file.sync_data()?;
        }
        self.applied_since_checkpoint = 0;
        self.batch_dirty = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_roundtrip_and_corruption() {
        let line = frame_line(r#"{"lsn":1}"#);
        let stripped = line.trim_end_matches('\n');
        assert_eq!(unframe_line(stripped), Some(r#"{"lsn":1}"#));
        // Any flipped payload byte fails the CRC.
        let mut bad = stripped.to_owned();
        bad.replace_range(9..10, "2");
        assert_eq!(unframe_line(&bad), None);
        // A garbled CRC fails too.
        let mut bad = stripped.to_owned();
        bad.replace_range(0..1, "z");
        assert_eq!(unframe_line(&bad), None);
    }

    #[test]
    fn record_json_roundtrip() {
        let records = vec![
            JournalRecord {
                lsn: 1,
                body: RecordBody::CreateIntent {
                    params: Json::obj(vec![("n", 8u64.to_json())]),
                },
            },
            JournalRecord {
                lsn: 2,
                body: RecordBody::CreateApplied {
                    session: 1,
                    params: Json::obj(vec![("n", 8u64.to_json())]),
                },
            },
            JournalRecord {
                lsn: 3,
                body: RecordBody::StepIntent {
                    session: 1,
                    rounds: 10,
                },
            },
            JournalRecord {
                lsn: 4,
                body: RecordBody::StepApplied {
                    session: 1,
                    stepped: 7,
                },
            },
            JournalRecord {
                lsn: 5,
                body: RecordBody::CloseIntent { session: 1 },
            },
            JournalRecord {
                lsn: 6,
                body: RecordBody::CloseApplied { session: 1 },
            },
            JournalRecord {
                lsn: 7,
                body: RecordBody::Evict { session: 2 },
            },
            JournalRecord {
                lsn: 8,
                body: RecordBody::Poison {
                    session: 3,
                    message: "boom".into(),
                },
            },
        ];
        for record in records {
            let text = record.to_json().render().unwrap();
            let back = JournalRecord::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, record);
            assert_eq!(
                record.body.is_applied(),
                !matches!(
                    record.body,
                    RecordBody::CreateIntent { .. }
                        | RecordBody::StepIntent { .. }
                        | RecordBody::CloseIntent { .. }
                )
            );
        }
    }

    #[test]
    fn load_tolerates_missing_and_torn() {
        let dir = std::env::temp_dir().join(format!("bcountd-journal-unit-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        // Missing dir: empty state, lsn starts at 1.
        let state = load_state(&dir).unwrap();
        assert!(state.checkpoint.is_none() && state.records.is_empty());
        assert_eq!(state.next_lsn, 1);

        // Two good records then a torn third: the prefix loads, the tail
        // is measured for truncation.
        fs::create_dir_all(&dir).unwrap();
        let r1 = JournalRecord {
            lsn: 1,
            body: RecordBody::StepIntent {
                session: 1,
                rounds: 3,
            },
        };
        let r2 = JournalRecord {
            lsn: 2,
            body: RecordBody::StepApplied {
                session: 1,
                stepped: 3,
            },
        };
        let mut text = frame_line(&r1.to_json().render().unwrap());
        text.push_str(&frame_line(&r2.to_json().render().unwrap()));
        let clean = text.len() as u64;
        text.push_str("deadbeef {\"lsn\":3,\"kind\":\"app"); // torn, no newline
        fs::write(dir.join(JOURNAL_FILE), &text).unwrap();
        let state = load_state(&dir).unwrap();
        assert_eq!(state.records, vec![r1, r2]);
        assert_eq!(state.clean_len, clean);
        assert_eq!(state.truncated_bytes, text.len() as u64 - clean);
        assert_eq!(state.next_lsn, 3);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_roundtrip_and_lsn_skip() {
        let dir = std::env::temp_dir().join(format!("bcountd-ckpt-unit-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let ckpt = Checkpoint {
            lsn: 5,
            next_id: 3,
            sessions: vec![CheckpointSession {
                session: 2,
                params: Json::obj(vec![("n", 16u64.to_json())]),
                round: 9,
                poisoned: Some("bang".into()),
                snapshot: Json::obj(vec![("round", 9u64.to_json())]),
            }],
        };
        let mut journal =
            Journal::open(&dir, FsyncPolicy::Off, 10, 6, 0, 0).expect("open fresh journal");
        journal.write_checkpoint(&ckpt).unwrap();
        // Records at or below the checkpoint LSN are skipped on load;
        // later ones replay.
        journal
            .append(RecordBody::StepApplied {
                session: 2,
                stepped: 1,
            })
            .unwrap();
        let state = load_state(&dir).unwrap();
        assert_eq!(state.checkpoint, Some(ckpt));
        assert_eq!(state.records.len(), 1);
        assert_eq!(state.next_lsn, 7);

        let _ = fs::remove_dir_all(&dir);
    }
}

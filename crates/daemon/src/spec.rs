//! `session.create` specs: the scenario-matrix cell coordinates, parsed
//! from wire params into a live type-erased execution.
//!
//! The spec mirrors the cell schema of the experiment artifacts
//! (`bcount-experiments/v1`): the same graph-family labels
//! (`hnd(d=8)`, `watts-strogatz(k=8,p=0.1)`, `cycle`, `torus2d`), the
//! same protocol and adversary labels, and the same deterministic
//! generation rule (graph from `ChaCha8Rng::seed_from_u64(seed)`, node
//! ids and randomness from the engine seed). Creating the same spec
//! twice — in one daemon, across daemons, or against a hand-built
//! [`Execution`] — yields bit-identical executions.

use bcount_baselines::{Convergecast, CountLiarAdversary, GeometricMax, MaxFakerAdversary};
use bcount_core::adversary::{
    BeaconSpamAdversary, EdgeInjectorAdversary, OscillatingSpamAdversary, PathTamperAdversary,
};
use bcount_core::congest::{CongestCounting, CongestParams};
use bcount_core::local::{LocalConfig, LocalCounting};
use bcount_graph::gen::{cycle, hnd, torus2d, watts_strogatz};
use bcount_graph::{Graph, NodeId};
use bcount_json::{field, opt_field, Json, ToJson};
use bcount_sim::{
    DynExecution, Execution, FaultPlan, NodeContext, NullAdversary, Protocol, SimConfig, StopWhen,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A rejected `session.create` spec (unsupported label, bad parameter,
/// or an incompatible protocol × adversary pairing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for SpecError {}

fn err<T>(msg: impl Into<String>) -> Result<T, SpecError> {
    Err(SpecError(msg.into()))
}

/// Graph family, parsed from its scenario-matrix label.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Family {
    Hnd { d: usize },
    WattsStrogatz { k: usize, p: f64 },
    Cycle,
    Torus2d,
}

impl Family {
    /// Parses a cell-schema label: `hnd(d=8)`, `watts-strogatz(k=8,p=0.1)`,
    /// `cycle`, `torus2d`.
    fn parse(label: &str) -> Result<Family, SpecError> {
        if label == "cycle" {
            return Ok(Family::Cycle);
        }
        if label == "torus2d" {
            return Ok(Family::Torus2d);
        }
        if let Some(args) = label.strip_prefix("hnd(").and_then(|s| s.strip_suffix(')')) {
            let d = parse_kv(args, "d")?
                .parse::<usize>()
                .map_err(|_| SpecError(format!("family '{label}': bad degree")))?;
            return Ok(Family::Hnd { d });
        }
        if let Some(args) = label
            .strip_prefix("watts-strogatz(")
            .and_then(|s| s.strip_suffix(')'))
        {
            let k = parse_kv(args, "k")?
                .parse::<usize>()
                .map_err(|_| SpecError(format!("family '{label}': bad k")))?;
            let p = parse_kv(args, "p")?
                .parse::<f64>()
                .map_err(|_| SpecError(format!("family '{label}': bad p")))?;
            if !(0.0..=1.0).contains(&p) {
                return err(format!("family '{label}': p must be in [0,1]"));
            }
            return Ok(Family::WattsStrogatz { k, p });
        }
        err(format!(
            "unknown family '{label}' (expected hnd(d=D), watts-strogatz(k=K,p=P), cycle, torus2d)"
        ))
    }

    /// The canonical label (re-rendered, so echoes are normalized).
    fn label(&self) -> String {
        match self {
            Family::Hnd { d } => format!("hnd(d={d})"),
            Family::WattsStrogatz { k, p } => format!("watts-strogatz(k={k},p={p})"),
            Family::Cycle => "cycle".into(),
            Family::Torus2d => "torus2d".into(),
        }
    }

    /// Deterministic generation — the scenario matrix's rule verbatim.
    fn generate(&self, n: usize, seed: u64) -> Result<Graph, SpecError> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        match self {
            Family::Hnd { d } => {
                hnd(n, *d, &mut rng).map_err(|e| SpecError(format!("hnd generation: {e}")))
            }
            Family::WattsStrogatz { k, p } => watts_strogatz(n, *k, *p, &mut rng)
                .map_err(|e| SpecError(format!("watts-strogatz generation: {e}"))),
            Family::Cycle => cycle(n).map_err(|e| SpecError(format!("cycle generation: {e}"))),
            Family::Torus2d => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                torus2d(side, side).map_err(|e| SpecError(format!("torus generation: {e}")))
            }
        }
    }
}

/// Pulls `key=value` out of a comma-separated argument list.
fn parse_kv<'a>(args: &'a str, key: &str) -> Result<&'a str, SpecError> {
    args.split(',')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| k.trim() == key)
        .map(|(_, v)| v.trim())
        .ok_or_else(|| SpecError(format!("missing '{key}=' argument")))
}

/// A fully parsed `session.create` spec.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    family: Family,
    n: usize,
    protocol: String,
    adversary: String,
    byzantine: usize,
    byzantine_at: Option<Vec<u32>>,
    seed: u64,
    max_rounds: u64,
    budget: u64,
    fake_value: u32,
    inflation: u64,
    fault: Option<FaultPlan>,
    panic_at: u64,
}

impl SessionSpec {
    /// The node count the client asked for (pre-generation; the torus
    /// family may round it). The server checks this against its `max_n`
    /// cap *before* any graph memory is allocated.
    pub fn requested_n(&self) -> usize {
        self.n
    }
}

/// The spec echo attached to `session.create` / `session.list` replies:
/// canonical labels plus the resolved (post-generation) sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionInfo {
    /// Canonical family label.
    pub family: String,
    /// True generated size (torus rounding can adjust the request).
    pub n: usize,
    /// Protocol label.
    pub protocol: String,
    /// Adversary label.
    pub adversary: String,
    /// Placement label (`spread` or `at(...)`).
    pub placement: String,
    /// Resolved Byzantine count.
    pub byzantine: usize,
    /// Master seed (graph + engine).
    pub seed: u64,
    /// Round budget.
    pub max_rounds: u64,
}

impl ToJson for SessionInfo {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("family", self.family.to_json()),
            ("n", self.n.to_json()),
            ("protocol", self.protocol.to_json()),
            ("adversary", self.adversary.to_json()),
            ("placement", self.placement.to_json()),
            ("byzantine", self.byzantine.to_json()),
            ("seed", self.seed.to_json()),
            ("max_rounds", self.max_rounds.to_json()),
        ])
    }
}

impl SessionSpec {
    /// Parses `session.create` params. Required: `n`, `protocol`.
    /// Optional (with defaults): `family` (`hnd(d=8)`), `adversary`
    /// (`silent`), `byzantine` (0), `byzantine_at` (explicit node list,
    /// overrides the spread placement), `seed` (0xC0DE), `max_rounds`
    /// (10000), `budget` (geometric-max rounds, 40), `fake_value`
    /// (max-faker payload, 30), `inflation` (count-liar payload, 10^6),
    /// `fault` (a [`FaultPlan`] object — seed, crashes, per-mille link
    /// rates; validated here), `panic_at` (panic-probe trigger round, 1).
    pub fn from_params(params: &Json) -> Result<SessionSpec, SpecError> {
        let wire = |e: bcount_json::JsonError| SpecError(e.to_string());
        let family_label: String = opt_field(params, "family")
            .map_err(wire)?
            .unwrap_or_else(|| "hnd(d=8)".into());
        let spec = SessionSpec {
            family: Family::parse(&family_label)?,
            n: field(params, "n").map_err(wire)?,
            protocol: field(params, "protocol").map_err(wire)?,
            adversary: opt_field(params, "adversary")
                .map_err(wire)?
                .unwrap_or_else(|| "silent".into()),
            byzantine: opt_field(params, "byzantine").map_err(wire)?.unwrap_or(0),
            byzantine_at: opt_field(params, "byzantine_at").map_err(wire)?,
            seed: opt_field(params, "seed").map_err(wire)?.unwrap_or(0xC0DE),
            max_rounds: opt_field(params, "max_rounds")
                .map_err(wire)?
                .unwrap_or(10_000),
            budget: opt_field(params, "budget").map_err(wire)?.unwrap_or(40),
            fake_value: opt_field(params, "fake_value").map_err(wire)?.unwrap_or(30),
            inflation: opt_field(params, "inflation")
                .map_err(wire)?
                .unwrap_or(1_000_000),
            fault: opt_field(params, "fault").map_err(wire)?,
            panic_at: opt_field(params, "panic_at").map_err(wire)?.unwrap_or(1),
        };
        if spec.n == 0 {
            return err("n must be at least 1");
        }
        if spec.max_rounds == 0 {
            return err("max_rounds must be at least 1");
        }
        if let Some(plan) = &spec.fault {
            plan.validate()
                .map_err(|e| SpecError(format!("fault plan: {e}")))?;
        }
        Ok(spec)
    }

    /// Resolves the Byzantine node set: the explicit `byzantine_at` list
    /// when given, else `byzantine` nodes spread evenly (stride
    /// placement — every `⌊n/count⌋`-th node).
    fn place_byzantine(&self, n: usize) -> Result<(Vec<NodeId>, String), SpecError> {
        if let Some(ids) = &self.byzantine_at {
            let mut nodes = Vec::with_capacity(ids.len());
            for &id in ids {
                if (id as usize) >= n {
                    return err(format!("byzantine_at node {id} out of range (n={n})"));
                }
                nodes.push(NodeId(id));
            }
            nodes.sort_unstable_by_key(|u| u.0);
            nodes.dedup();
            let label = format!(
                "at({})",
                nodes
                    .iter()
                    .map(|u| u.0.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            );
            return Ok((nodes, label));
        }
        let count = self.byzantine;
        if count >= n {
            return err(format!("byzantine count {count} must be below n={n}"));
        }
        let stride = (n / count.max(1)).max(1);
        let nodes = (0..count)
            .map(|k| NodeId(((k * stride) % n) as u32))
            .collect();
        Ok((nodes, "spread".into()))
    }

    /// Generates the graph, places the adversary, instantiates the
    /// protocol, and erases the result into a session-ready execution.
    pub fn build(&self) -> Result<(Box<dyn DynExecution>, SessionInfo), SpecError> {
        let graph = self.family.generate(self.n, self.seed)?;
        let n = graph.len();
        if let Some(plan) = &self.fault {
            // The engine asserts on out-of-range crash ids; check here so
            // a bad plan is a structured bad-spec, not a panic.
            for ev in &plan.crashes {
                if (ev.node as usize) >= n {
                    return err(format!(
                        "fault plan: crash node {} out of range (n={n})",
                        ev.node
                    ));
                }
            }
        }
        let (byz, placement) = self.place_byzantine(n)?;
        let info = SessionInfo {
            family: self.family.label(),
            n,
            protocol: self.protocol.clone(),
            adversary: self.adversary.clone(),
            placement,
            byzantine: byz.len(),
            seed: self.seed,
            max_rounds: self.max_rounds,
        };
        let exec = self.build_execution(graph, &byz)?;
        Ok((exec, info))
    }

    /// The protocol × adversary dispatch — the scenario matrix's
    /// `run_cell` pairings, erased. Stop conditions mirror the matrix:
    /// CONGEST stops when all honest nodes decided, everything else when
    /// all honest nodes halted.
    fn build_execution(
        &self,
        graph: Graph,
        byz: &[NodeId],
    ) -> Result<Box<dyn DynExecution>, SpecError> {
        let config = |stop_when: StopWhen| {
            let mut builder = SimConfig::builder()
                .seed(self.seed)
                .max_rounds(self.max_rounds)
                .stop_when(stop_when);
            if let Some(plan) = &self.fault {
                builder = builder.fault_plan(plan.clone());
            }
            builder
                .build()
                .expect("validated spec fields cannot contradict")
        };
        let pairing = || {
            err(format!(
                "adversary '{}' is incompatible with protocol '{}'",
                self.adversary, self.protocol
            ))
        };
        match self.protocol.as_str() {
            "congest" => {
                let params = CongestParams::default();
                let cfg = config(StopWhen::AllHonestDecided);
                let factory =
                    |_: NodeId, init: &bcount_sim::NodeInit| CongestCounting::new(params, init);
                let raw: fn(&bcount_core::congest::CongestEstimate) -> f64 =
                    |e| f64::from(e.estimate);
                Ok(match self.adversary.as_str() {
                    "silent" => Execution::new(graph, byz, factory, NullAdversary, cfg).erase(raw),
                    "beacon-spam" => {
                        Execution::new(graph, byz, factory, BeaconSpamAdversary::new(params), cfg)
                            .erase(raw)
                    }
                    "path-tamper" => {
                        Execution::new(graph, byz, factory, PathTamperAdversary::new(params), cfg)
                            .erase(raw)
                    }
                    "oscillating-spam" => Execution::new(
                        graph,
                        byz,
                        factory,
                        OscillatingSpamAdversary::new(params),
                        cfg,
                    )
                    .erase(raw),
                    _ => return pairing(),
                })
            }
            "local" => {
                let lcfg = LocalConfig::default();
                let cfg = config(StopWhen::AllHonestHalted);
                let factory =
                    |_: NodeId, init: &bcount_sim::NodeInit| LocalCounting::new(lcfg, init);
                let raw: fn(&bcount_core::local::LocalEstimate) -> f64 = |e| f64::from(e.radius);
                Ok(match self.adversary.as_str() {
                    "silent" => Execution::new(graph, byz, factory, NullAdversary, cfg).erase(raw),
                    "edge-injector" => Execution::new(
                        graph,
                        byz,
                        factory,
                        EdgeInjectorAdversary::new(self.seed),
                        cfg,
                    )
                    .erase(raw),
                    _ => return pairing(),
                })
            }
            "geometric-max" => {
                let budget = self.budget;
                let cfg = config(StopWhen::AllHonestHalted);
                let factory =
                    move |_: NodeId, init: &bcount_sim::NodeInit| GeometricMax::new(budget, init);
                let raw: fn(&u32) -> f64 = |v| f64::from(*v);
                Ok(match self.adversary.as_str() {
                    "silent" => Execution::new(graph, byz, factory, NullAdversary, cfg).erase(raw),
                    "max-faker" => Execution::new(
                        graph,
                        byz,
                        factory,
                        MaxFakerAdversary {
                            fake_value: self.fake_value,
                        },
                        cfg,
                    )
                    .erase(raw),
                    _ => return pairing(),
                })
            }
            "convergecast" => {
                let cfg = config(StopWhen::AllHonestHalted);
                let factory = |u: NodeId, init: &bcount_sim::NodeInit| {
                    Convergecast::new(u == NodeId(0), init)
                };
                let raw: fn(&u64) -> f64 = |v| *v as f64;
                Ok(match self.adversary.as_str() {
                    "silent" => Execution::new(graph, byz, factory, NullAdversary, cfg).erase(raw),
                    "count-liar" => Execution::new(
                        graph,
                        byz,
                        factory,
                        CountLiarAdversary {
                            inflation: self.inflation,
                        },
                        cfg,
                    )
                    .erase(raw),
                    _ => return pairing(),
                })
            }
            "panic-probe" => {
                // Deliberately faulty protocol for exercising the
                // daemon's panic isolation: broadcasts nothing of value
                // and panics at the configured round. Silent-adversary
                // only — the probe is about the serving plane, not the
                // adversary model.
                let panic_at = self.panic_at;
                let cfg = config(StopWhen::AllHonestHalted);
                let factory = move |_: NodeId, _: &bcount_sim::NodeInit| PanicProbe { panic_at };
                let raw: fn(&()) -> f64 = |_| 0.0;
                Ok(match self.adversary.as_str() {
                    "silent" => Execution::new(graph, byz, factory, NullAdversary, cfg).erase(raw),
                    _ => return pairing(),
                })
            }
            other => err(format!(
                "unknown protocol '{other}' (expected congest, local, geometric-max, convergecast, panic-probe)"
            )),
        }
    }
}

/// A protocol that panics on schedule — the daemon's panic-isolation
/// test vehicle (`protocol: "panic-probe"`, trigger round `panic_at`).
struct PanicProbe {
    panic_at: u64,
}

impl Protocol for PanicProbe {
    type Message = ();
    type Output = ();

    fn on_round(&mut self, ctx: &mut NodeContext<'_, ()>) {
        if ctx.round() >= self.panic_at {
            panic!("panic-probe tripped at round {}", ctx.round());
        }
        ctx.broadcast(());
    }

    fn output(&self) -> Option<()> {
        None
    }

    fn has_halted(&self) -> bool {
        false
    }
}

#!/usr/bin/env bash
# Crash-recovery smoke: SIGKILL a live bcountd mid-`session.step`,
# restart it on the same --state-dir, and demand the final
# `session.query` reply is byte-identical to an uninterrupted run.
#
# The uninterrupted golden deliberately runs WITHOUT --state-dir: the
# diff then also pins that the durability plane adds zero observable
# drift to the wire bytes. The crash run feeds single-round steps
# through a fifo with --fsync always, so wherever the SIGKILL lands —
# between requests, mid-request, mid-journal-append — the surviving
# journal is a clean prefix and recovery must converge to the same
# halted state once the restarted daemon runs the big catch-up step.
#
# Usage: ci/crash_recovery_smoke.sh [path-to-bcountd]
set -euo pipefail

BCOUNTD=${1:-./target/debug/bcountd}
WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

CREATE='{"id":1,"method":"session.create","params":{"n":256,"protocol":"geometric-max","max_rounds":600,"seed":23}}'
STEP_BIG='{"id":2,"method":"session.step","params":{"session":1,"rounds":600}}'
STEP_ONE='{"id":3,"method":"session.step","params":{"session":1,"rounds":1}}'
QUERY='{"id":99,"method":"session.query","params":{"session":1}}'

# ---- golden: uninterrupted, non-durable run to the halted state ------
{
  echo "$CREATE"
  echo "$STEP_BIG"
  echo "$QUERY"
} | "$BCOUNTD" --frozen-clock > "$WORK/golden.out"
grep '"id":99' "$WORK/golden.out" > "$WORK/golden.query"

# ---- crash run: flood single-round steps, SIGKILL mid-stream ---------
mkfifo "$WORK/pipe"
"$BCOUNTD" --frozen-clock --state-dir "$WORK/state" --fsync always \
  < "$WORK/pipe" > "$WORK/crash.out" &
DAEMON=$!
{
  echo "$CREATE"
  # Give the create a moment to commit so the kill always lands with a
  # session on the books; after that, anywhere mid-step is fair game.
  sleep 0.3
  while true; do
    echo "$STEP_ONE"
  done
} > "$WORK/pipe" &
FEEDER=$!
sleep 0.8
kill -9 "$DAEMON" 2>/dev/null || true
kill "$FEEDER" 2>/dev/null || true
wait "$DAEMON" 2>/dev/null || true
wait "$FEEDER" 2>/dev/null || true
echo "killed bcountd after $(grep -c '"result"' "$WORK/crash.out" || true) committed replies"

# ---- restart on the same state dir and finish the run ----------------
{
  echo '{"id":50,"method":"session.list"}'
  echo "$STEP_BIG"
  echo "$QUERY"
} | "$BCOUNTD" --frozen-clock --state-dir "$WORK/state" > "$WORK/recovered.out"

grep -q '"recovered":true' "$WORK/recovered.out" || {
  echo "FAIL: session.list does not mark the session as recovered"
  cat "$WORK/recovered.out"
  exit 1
}
grep '"id":99' "$WORK/recovered.out" > "$WORK/recovered.query"

diff -u "$WORK/golden.query" "$WORK/recovered.query"
echo "crash-recovery smoke OK: recovered session.query is byte-identical to the uninterrupted run"

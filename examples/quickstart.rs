//! Quickstart: Byzantine counting on a random regular network.
//!
//! Generates an `H(n, d)` expander, runs the paper's CONGEST counting
//! algorithm (Algorithm 2) with a handful of Byzantine beacon spammers,
//! and prints what every honest node decided `log n` to be.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use byzantine_counting::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let n = 512;
    let d = 8;
    let n_byz = 8;
    println!("== Byzantine counting quickstart ==");
    println!(
        "network: H({n}, {d}) — {} honest, {n_byz} Byzantine",
        n - n_byz
    );
    println!(
        "truth:   ln n = {:.2}, log_d n = {:.2}\n",
        (n as f64).ln(),
        (n as f64).ln() / (d as f64).ln()
    );

    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let g = hnd(n, d, &mut rng).expect("valid parameters");
    let byz: Vec<NodeId> = (0..n_byz).map(|k| NodeId((k * n / n_byz) as u32)).collect();

    let params = CongestParams::default();
    let mut sim = Simulation::new(
        &g,
        &byz,
        |_, init| CongestCounting::new(params, init),
        BeaconSpamAdversary::new(params),
        SimConfig {
            seed: 42,
            max_rounds: 40_000,
            stop_when: StopWhen::AllHonestDecided,
            ..SimConfig::default()
        },
    );
    let report = sim.run();

    // Histogram of decided estimates.
    let mut histogram = std::collections::BTreeMap::<u32, usize>::new();
    for u in report.honest_nodes() {
        if let Some(est) = report.outputs[u] {
            *histogram.entry(est.estimate).or_default() += 1;
        }
    }
    println!("decided estimates of log n (phase numbers):");
    for (estimate, count) in &histogram {
        println!(
            "  L = {estimate:>2}  x{count:<4} {}",
            "#".repeat(count / 4 + 1)
        );
    }

    let band = Band::new(0.15, 3.0);
    let er = EstimateReport::evaluate(
        n,
        report
            .honest_nodes()
            .map(|u| report.outputs[u].map(|e| f64::from(e.estimate))),
        band,
    );
    println!(
        "\ndecided:  {:5.1}% of honest nodes",
        100.0 * er.decided_fraction()
    );
    println!(
        "in band:  {:5.1}% within [{:.2}, {:.2}]·ln n",
        100.0 * er.in_band_fraction(),
        band.lo,
        band.hi
    );
    println!("median L/ln n = {:.2}", er.median_ratio);
    println!("rounds:   {}", report.rounds);
    let honest: Vec<usize> = report.honest_nodes().collect();
    println!(
        "messages: {} total from honest nodes, largest message {} bits",
        report.metrics.total_messages(honest.iter().copied()),
        honest
            .iter()
            .map(|&u| report.metrics.per_node[u].max_message_bits)
            .max()
            .unwrap_or(0),
    );
}

//! Peer-to-peer overlay bootstrap: the paper's §1.1 application.
//!
//! A fresh unstructured overlay (random regular graph) wants to run the
//! Byzantine agreement protocol of Augustine–Pandurangan–Robinson, but
//! that protocol needs a constant-factor bound on `log n` for its random
//! walks and iteration counts — and nobody knows `n`. The paper's answer:
//! run Byzantine counting first. This example runs the whole pipeline and
//! compares it against an oracle that magically knows `ln n`.
//!
//! ```text
//! cargo run --release --example p2p_bootstrap
//! ```

use byzantine_counting::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let n = 256;
    let d = 8;
    let n_byz = ((n as f64).sqrt() / 4.0) as usize;
    let majority = 7 * n / 10;
    println!("== P2P bootstrap: counting -> agreement ==");
    println!(
        "overlay: H({n}, {d}); {n_byz} Byzantine (silent); inputs: {majority} ones / {} zeros\n",
        n - majority
    );

    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let g = hnd(n, d, &mut rng).expect("valid parameters");
    let byz: Vec<NodeId> = (0..n_byz)
        .map(|k| NodeId((k * n / n_byz.max(1)) as u32))
        .collect();
    let inputs: Vec<bool> = (0..n).map(|u| u < majority).collect();

    // --- Phase 1 + 2: the pipeline. -----------------------------------
    let pipeline = counting_then_agreement(
        &g,
        &byz,
        &inputs,
        CongestParams::default(),
        AgreementParams::default(),
        1,
    );
    let estimates: Vec<u32> = pipeline.log_estimates.iter().flatten().copied().collect();
    let (lo, hi) = (
        estimates.iter().min().copied().unwrap_or(0),
        estimates.iter().max().copied().unwrap_or(0),
    );
    println!("counting phase: {} rounds", pipeline.counting_rounds);
    println!(
        "  estimates of log n: {lo}..{hi} (truth: ln n = {:.2})",
        (n as f64).ln()
    );
    println!(
        "pipeline agreement on the majority input: {:.1}% of honest nodes",
        100.0 * pipeline.agreement_fraction(true)
    );

    // --- Oracle comparison. --------------------------------------------
    let oracle = (n as f64).ln().ceil() as u32;
    let mut sim = Simulation::new(
        &g,
        &byz,
        |u, _| AgreementProtocol::new(AgreementParams::default(), inputs[u.index()], oracle),
        NullAdversary,
        SimConfig {
            seed: 2,
            max_rounds: 20_000,
            ..SimConfig::default()
        },
    );
    let oracle_report = sim.run();
    let honest: Vec<usize> = oracle_report.honest_nodes().collect();
    let agree = honest
        .iter()
        .filter(|&&u| oracle_report.outputs[u].map(|o| o.value).unwrap_or(false))
        .count();
    println!(
        "oracle agreement (log n given for free): {:.1}% of honest nodes",
        100.0 * agree as f64 / honest.len() as f64
    );
    println!("\nThe pipeline removes the known-n assumption at the cost of the counting rounds.");
}

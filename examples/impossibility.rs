//! Theorem 3 live: without expansion, counting is impossible.
//!
//! Builds the impossibility proof's graph — `t` copies of a base network
//! glued at a single Byzantine cut node — and shows that honest estimates
//! cannot track the true size: each copy's transcript is identical to a
//! standalone network, so estimates stay flat as `t` (and hence `n`)
//! grows. The same protocol on a genuine expander of equal size tracks
//! `ln n` just fine — expansion is not an artifact of the algorithm, it
//! is information-theoretically necessary.
//!
//! ```text
//! cargo run --release --example impossibility
//! ```

use byzantine_counting::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn median(mut xs: Vec<f64>) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

fn run_counting(g: &Graph, byz: &[NodeId], seed: u64) -> Vec<f64> {
    let params = CongestParams::default();
    let mut sim = Simulation::new(
        g,
        byz,
        |_, init| CongestCounting::new(params, init),
        NullAdversary, // silence IS the attack: copies cannot be told apart
        SimConfig {
            seed,
            max_rounds: 60_000,
            stop_when: StopWhen::AllHonestDecided,
            ..SimConfig::default()
        },
    );
    let report = sim.run();
    report
        .outputs
        .iter()
        .flatten()
        .map(|e| f64::from(e.estimate))
        .collect()
}

fn main() {
    let base_n = 65;
    let d = 8;
    println!("== Theorem 3: phantom copies behind a Byzantine cut node ==");
    println!("base network: H({base_n}, {d}); node 0 is Byzantine and silent\n");
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let base = hnd(base_n, d, &mut rng).expect("valid parameters");
    println!(
        "{:>7} {:>8} {:>8} {:>18} {:>22}",
        "copies", "true n", "ln n", "median L (phantom)", "median L (expander)"
    );
    for t in [1usize, 2, 4, 8, 16] {
        let phantom = phantom_copies(&base, NodeId(0), t);
        let n_total = phantom.len();
        let phantom_ests = run_counting(&phantom, &[NodeId(0)], 5);
        // Contrast: a genuine expander of the same size, same silent fault.
        let mut rng = ChaCha8Rng::seed_from_u64(100 + t as u64);
        let expander = hnd(n_total, d, &mut rng).expect("valid parameters");
        let expander_ests = run_counting(&expander, &[NodeId(0)], 5);
        println!(
            "{:>7} {:>8} {:>8.2} {:>18.1} {:>22.1}",
            t,
            n_total,
            (n_total as f64).ln(),
            median(phantom_ests),
            median(expander_ests),
        );
    }
    println!("\nThe phantom column is flat: honest nodes inside a copy see transcripts");
    println!("identical to a standalone copy, so no algorithm can output anything that");
    println!("tracks the true size — exactly the indistinguishability of Theorem 3.");
}

//! Topology zoo: where Byzantine counting works — and where it cannot.
//!
//! Runs the CONGEST counting algorithm (benign, so topology is the only
//! variable) across the graph families in this workspace and reports the
//! estimates against `ln n`. Expanders (random regular, rewired small
//! worlds) land in a tight constant-factor band; low-expansion topologies
//! (cycles, tori, barbells, bridged expanders) under- or over-shoot —
//! the experimental face of the paper's impossibility result: vertex
//! expansion is what makes the estimate meaningful.
//!
//! ```text
//! cargo run --release --example topology_zoo
//! ```

use byzantine_counting::graph::analysis::spectral::spectral_gap;
use byzantine_counting::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn median(mut xs: Vec<f64>) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    xs[xs.len() / 2]
}

fn run(g: &Graph, seed: u64) -> (f64, u64) {
    let params = CongestParams::default();
    let mut sim = Simulation::new(
        g,
        &[],
        |_, init| CongestCounting::new(params, init),
        NullAdversary,
        SimConfig {
            seed,
            max_rounds: 20_000,
            ..SimConfig::default()
        },
    );
    let report = sim.run();
    let ests: Vec<f64> = report
        .outputs
        .iter()
        .flatten()
        .map(|e| f64::from(e.estimate))
        .collect();
    (median(ests), report.rounds)
}

fn main() {
    let n = 256;
    println!("== Topology zoo: benign CONGEST counting on {n}-node graphs ==");
    println!("truth: ln n = {:.2}\n", (n as f64).ln());
    println!(
        "{:<28} {:>8} {:>10} {:>10} {:>8}",
        "topology", "gap", "median L", "L / ln n", "rounds"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let zoo: Vec<(&str, Graph)> = vec![
        ("H(n,8) random regular", hnd(n, 8, &mut rng).unwrap()),
        (
            "configuration model d=8",
            configuration_model(n, 8, &mut rng).unwrap(),
        ),
        (
            "small world k=4 p=0.3",
            watts_strogatz(n, 4, 0.3, &mut rng).unwrap(),
        ),
        (
            "small world k=4 p=0.0 (ring)",
            watts_strogatz(n, 4, 0.0, &mut rng).unwrap(),
        ),
        ("cycle", cycle(n).unwrap()),
        ("torus 16x16", torus2d(16, 16).unwrap()),
        ("barbell 2x64 cliques", barbell(64, 0).unwrap()),
        (
            "bridged expanders 2x128",
            bridged_expanders(n / 2, 8, &mut rng).unwrap(),
        ),
    ];
    for (name, g) in zoo {
        let gap = spectral_gap(&g, 300);
        let (med, rounds) = run(&g, 23);
        println!(
            "{:<28} {:>8.3} {:>10.1} {:>10.2} {:>8}",
            name,
            gap,
            med,
            med / (g.len() as f64).ln(),
            rounds
        );
    }
    println!("\nHigh spectral gap -> estimates track ln n (rerun with larger n and they");
    println!("grow). Poor expansion -> a phase's beacons only ever see a local patch,");
    println!("so the estimate is SIZE-BLIND: quadruple the cycle or torus and the");
    println!("numbers barely move (Theorem 3 says no algorithm can do better there).");
}

//! The adversary gauntlet: both counting algorithms against every attack.
//!
//! Runs Algorithm 1 (LOCAL) and Algorithm 2 (CONGEST) on the same
//! expander against each implemented Byzantine strategy and prints how
//! the far-from-Byzantine honest nodes fared — the guarantee surface of
//! Theorems 1 and 2.
//!
//! ```text
//! cargo run --release --example adversary_gauntlet
//! ```

use byzantine_counting::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn far_nodes(g: &Graph, byz: &[NodeId], min_dist: u32) -> Vec<usize> {
    use byzantine_counting::graph::analysis::bfs::distances;
    let dists: Vec<_> = byz.iter().map(|&b| distances(g, b)).collect();
    (0..g.len())
        .filter(|&u| !byz.iter().any(|b| b.index() == u))
        .filter(|&u| dists.iter().all(|d| d[u].unwrap_or(u32::MAX) >= min_dist))
        .collect()
}

fn summarize(name: &str, n: usize, ests: Vec<Option<f64>>, band: Band) {
    let er = EstimateReport::evaluate(n, ests, band);
    println!(
        "  {name:<28} decided {:5.1}%   in-band {:5.1}%   median L/ln n = {:.2}",
        100.0 * er.decided_fraction(),
        100.0 * er.in_band_fraction(),
        er.median_ratio,
    );
}

fn main() {
    let n = 128;
    let d = 8;
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let g = hnd(n, d, &mut rng).expect("valid parameters");
    let byz: Vec<NodeId> = vec![NodeId(0), NodeId(43), NodeId(86)];
    let far = far_nodes(&g, &byz, 2);
    println!(
        "== Adversary gauntlet: n = {n}, d = {d}, |Byz| = {} ==",
        byz.len()
    );
    println!("reporting far honest nodes (distance >= 2 from every Byzantine node)\n");

    // ---- Algorithm 1 (LOCAL). -----------------------------------------
    println!("Algorithm 1 (deterministic, LOCAL):");
    let cfg = LocalConfig {
        max_degree: d + 2,
        ..LocalConfig::default()
    };
    let local_band = Band::new(0.2, 2.0);
    let run_local = |adv: &str| -> Vec<Option<f64>> {
        let factory = |_: NodeId, init: &NodeInit| LocalCounting::new(cfg, init);
        let sim_cfg = SimConfig {
            seed: 9,
            max_rounds: 300,
            ..SimConfig::default()
        };
        let report = match adv {
            "silent (crash)" => Simulation::new(&g, &byz, factory, NullAdversary, sim_cfg).run(),
            "fake-expander" => Simulation::new(
                &g,
                &byz,
                factory,
                FakeExpanderAdversary::new(2, d, 2, 5),
                sim_cfg,
            )
            .run(),
            _ => Simulation::new(&g, &byz, factory, EdgeInjectorAdversary::new(5), sim_cfg).run(),
        };
        far.iter()
            .map(|&u| report.outputs[u].map(|e| f64::from(e.radius)))
            .collect()
    };
    for adv in ["silent (crash)", "fake-expander", "edge-injector"] {
        summarize(adv, n, run_local(adv), local_band);
    }

    // ---- Algorithm 2 (CONGEST). -----------------------------------------
    println!("\nAlgorithm 2 (randomized, CONGEST):");
    let params = CongestParams::default();
    let congest_band = Band::new(0.15, 3.0);
    let run_congest = |adv: &str| -> Vec<Option<f64>> {
        let factory = |_: NodeId, init: &NodeInit| CongestCounting::new(params, init);
        let sim_cfg = SimConfig {
            seed: 11,
            max_rounds: 40_000,
            stop_when: StopWhen::AllHonestDecided,
            ..SimConfig::default()
        };
        let report = match adv {
            "silent (crash)" => Simulation::new(&g, &byz, factory, NullAdversary, sim_cfg).run(),
            "beacon-spam" => {
                Simulation::new(&g, &byz, factory, BeaconSpamAdversary::new(params), sim_cfg).run()
            }
            _ => {
                Simulation::new(&g, &byz, factory, PathTamperAdversary::new(params), sim_cfg).run()
            }
        };
        far.iter()
            .map(|&u| report.outputs[u].map(|e| f64::from(e.estimate)))
            .collect()
    };
    for adv in ["silent (crash)", "beacon-spam", "path-tamper"] {
        summarize(adv, n, run_congest(adv), congest_band);
    }
    println!("\nTheorems 1 & 2: far honest nodes decide constant-factor estimates of ln n");
    println!("no matter which of these strategies the adversary picks.");
}

//! The deterministic case-generation loop behind [`crate::proptest!`].

use crate::strategy::Strategy;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RNG driving all strategies.
pub type TestRng = ChaCha8Rng;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected cases (via [`crate::prop_assume!`]) before the run
    /// stops early; unlike proptest this is not an error, the test simply
    /// passes on fewer cases.
    pub max_global_rejects: u32,
    /// Unused (kept so `..ProptestConfig::default()` spreads keep working
    /// when code written against real proptest sets it).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 1024,
            max_shrink_iters: 0,
        }
    }
}

/// Why one generated case did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's precondition failed (`prop_assume!`); try another case.
    Reject,
    /// The property is violated.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// Result type property-test bodies produce.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs a strategy against a property closure for the configured number of
/// deterministic cases.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner for one property.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs up to `cases` generated inputs through `test`. Returns the
    /// failure message of the first failing case, if any.
    pub fn run<S>(
        &mut self,
        name: &str,
        strategy: &S,
        mut test: impl FnMut(S::Value) -> TestCaseResult,
    ) -> Result<(), String>
    where
        S: Strategy,
        S::Value: std::fmt::Debug + Clone,
    {
        // One fixed stream per test name: deterministic across runs, but
        // different properties see different inputs.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            hash = (hash ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        let mut rng = TestRng::seed_from_u64(hash);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < self.config.cases && rejected < self.config.max_global_rejects {
            let input = strategy.sample(&mut rng);
            let shown = input.clone();
            match test(input) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => rejected += 1,
                Err(TestCaseError::Fail(message)) => {
                    return Err(format!(
                        "proptest case failed: {message}\n  inputs: {shown:?}\n  \
                         (vendored mini-proptest: no shrinking; case {passed}, test `{name}`)"
                    ));
                }
            }
        }
        Ok(())
    }
}

//! The deterministic case-generation loop behind [`crate::proptest!`].

use crate::strategy::Strategy;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RNG driving all strategies.
pub type TestRng = ChaCha8Rng;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum rejected cases (via [`crate::prop_assume!`]) before the run
    /// stops early; unlike proptest this is not an error, the test simply
    /// passes on fewer cases.
    pub max_global_rejects: u32,
    /// Total budget of shrink attempts (candidate re-executions) spent
    /// minimizing one failing case. `0` disables shrinking.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 1024,
            max_shrink_iters: 1024,
        }
    }
}

/// Why one generated case did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case's precondition failed (`prop_assume!`); try another case.
    Reject,
    /// The property is violated.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// Result type property-test bodies produce.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs a strategy against a property closure for the configured number of
/// deterministic cases.
pub struct TestRunner {
    config: ProptestConfig,
}

impl TestRunner {
    /// Creates a runner for one property.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Runs up to `cases` generated inputs through `test`. A failing case
    /// is greedily minimized through [`Strategy::shrink`] (up to
    /// [`ProptestConfig::max_shrink_iters`] candidate re-executions);
    /// returns the minimal failing input's message.
    pub fn run<S>(
        &mut self,
        name: &str,
        strategy: &S,
        mut test: impl FnMut(S::Value) -> TestCaseResult,
    ) -> Result<(), String>
    where
        S: Strategy,
        S::Value: std::fmt::Debug + Clone,
    {
        // One fixed stream per test name: deterministic across runs, but
        // different properties see different inputs.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            hash = (hash ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        let mut rng = TestRng::seed_from_u64(hash);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < self.config.cases && rejected < self.config.max_global_rejects {
            let input = strategy.sample(&mut rng);
            let shown = input.clone();
            match test(input) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => rejected += 1,
                Err(TestCaseError::Fail(message)) => {
                    let (minimal, message, steps) =
                        shrink_failure(strategy, shown, message, &mut test, &self.config);
                    return Err(format!(
                        "proptest case failed: {message}\n  minimal failing input: {minimal:?}\n  \
                         (vendored mini-proptest: {steps} shrink steps; \
                         case {passed}, test `{name}`)"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Greedy shrinking: repeatedly asks the strategy for simpler candidates of
/// the current minimal failing input and restarts from the first candidate
/// that still fails, until no candidate fails or the budget is spent.
/// Rejected candidates (failed `prop_assume!`) count as passing.
fn shrink_failure<S>(
    strategy: &S,
    mut minimal: S::Value,
    mut message: String,
    test: &mut impl FnMut(S::Value) -> TestCaseResult,
    config: &ProptestConfig,
) -> (S::Value, String, u32)
where
    S: Strategy,
    S::Value: Clone,
{
    let mut steps = 0u32;
    'minimize: while steps < config.max_shrink_iters {
        for (index, candidate) in strategy.shrink(&minimal).into_iter().enumerate() {
            if steps >= config.max_shrink_iters {
                break 'minimize;
            }
            steps += 1;
            let shown = candidate.clone();
            if let Err(TestCaseError::Fail(better)) = test(candidate) {
                // Tell the strategy which candidate survived so
                // regeneration-based shrinkers (prop_map) can move their
                // cached source along the descent.
                strategy.accept_shrink(&minimal, index);
                minimal = shown;
                message = better;
                continue 'minimize;
            }
        }
        break;
    }
    (minimal, message, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn failure_message<S>(
        strategy: &S,
        test: impl FnMut(S::Value) -> TestCaseResult,
    ) -> Option<String>
    where
        S: Strategy,
        S::Value: std::fmt::Debug + Clone,
    {
        let mut runner = TestRunner::new(ProptestConfig::default());
        runner.run("shrinking_unit_test", strategy, test).err()
    }

    #[test]
    fn integers_shrink_to_the_failure_boundary() {
        // Fails for v ⩾ 100: the shrinker must land exactly on 100.
        let msg = failure_message(&((0u64..10_000),), |(v,)| {
            if v < 100 {
                Ok(())
            } else {
                Err(TestCaseError::fail(format!("too big: {v}")))
            }
        })
        .expect("property must fail");
        assert!(
            msg.contains("minimal failing input: (100,)"),
            "not minimized to the boundary: {msg}"
        );
    }

    #[test]
    fn range_shrinking_respects_the_lower_bound() {
        // Everything fails: the minimum must be the range start.
        let msg = failure_message(&((7i32..500),), |(_v,)| {
            Err(TestCaseError::fail("always".into()))
        })
        .expect("property must fail");
        assert!(
            msg.contains("minimal failing input: (7,)"),
            "not minimized to the range start: {msg}"
        );
    }

    #[test]
    fn vecs_shrink_to_a_single_offending_element() {
        // Fails when any element exceeds 1000: minimal case is the vector
        // [1001] (prefix + removal shrinking drop everything else, element
        // shrinking lands on the boundary).
        let strategy = (crate::collection::vec(0u64..10_000, 0..8),);
        let msg = failure_message(&strategy, |(v,)| {
            if v.iter().all(|&x| x <= 1000) {
                Ok(())
            } else {
                Err(TestCaseError::fail(format!("offender in {v:?}")))
            }
        })
        .expect("property must fail");
        assert!(
            msg.contains("minimal failing input: ([1001],)"),
            "not minimized to the single offender: {msg}"
        );
    }

    #[test]
    fn tuples_shrink_component_wise() {
        // Fails when flag && v > 5; the flag is load-bearing (cannot
        // shrink to false) but v must minimize to 6.
        let msg = failure_message(&(crate::strategy::any::<bool>(), 0u32..100), |(flag, v)| {
            if flag && v > 5 {
                Err(TestCaseError::fail("both".into()))
            } else {
                Ok(())
            }
        })
        .expect("property must fail");
        assert!(
            msg.contains("minimal failing input: (true, 6)"),
            "not minimized component-wise: {msg}"
        );
    }

    #[test]
    fn mapped_tuples_shrink_through_regeneration() {
        // The mapping is not invertible, so shrinking must regenerate:
        // shrink the underlying (a, b) tuple and re-map. Fails for
        // a >= 123, so the minimal case is Widget { a: 123, b: 0 } —
        // strictly below whatever the first counterexample was.
        #[derive(Debug, Clone, PartialEq)]
        struct Widget {
            a: u64,
            b: u64,
        }
        let strategy = ((0u64..10_000), (0u64..10_000)).prop_map(|(a, b)| Widget { a, b });
        let msg = failure_message(&strategy, |w| {
            if w.a < 123 {
                Ok(())
            } else {
                Err(TestCaseError::fail(format!("a too big: {}", w.a)))
            }
        })
        .expect("property must fail");
        assert!(
            msg.contains("minimal failing input: Widget { a: 123, b: 0 }"),
            "mapped tuple not minimized to the boundary: {msg}"
        );
    }

    #[test]
    fn nested_maps_shrink_through_regeneration() {
        // Regeneration composes: a map over a map over a tuple still
        // descends to the failure boundary (2 * a + 1 >= 19 ⟺ a >= 9).
        let strategy = ((0u64..1_000),)
            .prop_map(|(a,)| a * 2)
            .prop_map(|doubled| doubled + 1);
        let msg = failure_message(&strategy, |odd| {
            if odd < 19 {
                Ok(())
            } else {
                Err(TestCaseError::fail(format!("odd too big: {odd}")))
            }
        })
        .expect("property must fail");
        assert!(
            msg.contains("minimal failing input: 19"),
            "nested map not minimized to the boundary: {msg}"
        );
    }

    #[test]
    fn mapped_strategies_shrink_inside_tuples() {
        // A mapped component inside an outer tuple: the tuple routes the
        // accepted-candidate index to the component, whose cache follows.
        let strategy = ((0u64..1_000).prop_map(|v| v + 1), (0u32..50));
        let msg = failure_message(&strategy, |(v, _w)| {
            if v < 42 {
                Ok(())
            } else {
                Err(TestCaseError::fail(format!("v={v}")))
            }
        })
        .expect("property must fail");
        assert!(
            msg.contains("minimal failing input: (42, 0)"),
            "mapped tuple component not minimized: {msg}"
        );
    }

    #[test]
    fn mapped_elements_deep_shrink_inside_vecs() {
        // A mapped strategy as a *collection element*: the vector threads
        // positions through sampling and shrinking, so every slot keeps
        // its own regeneration cache. Fails when any tag exceeds 1000:
        // removals (which realign the per-position caches) must discard
        // the innocent elements and the surviving slot must regenerate
        // down to the boundary — minimal case [Tag(1001)] (source 1000).
        #[derive(Debug, Clone, PartialEq)]
        struct Tag(u64);
        let strategy = (crate::collection::vec(
            (0u64..10_000).prop_map(|v| Tag(v + 1)),
            0..8,
        ),);
        let msg = failure_message(&strategy, |(v,)| {
            if v.iter().all(|t| t.0 <= 1000) {
                Ok(())
            } else {
                Err(TestCaseError::fail(format!("offender in {v:?}")))
            }
        })
        .expect("property must fail");
        assert!(
            msg.contains("minimal failing input: ([Tag(1001)],)"),
            "mapped vec element not deep-minimized: {msg}"
        );
    }

    #[test]
    fn shrinking_can_be_disabled() {
        let mut runner = TestRunner::new(ProptestConfig {
            max_shrink_iters: 0,
            ..ProptestConfig::default()
        });
        let msg = runner
            .run("no_shrinking", &((0u64..1000),), |(v,)| {
                if v < 100 {
                    Ok(())
                } else {
                    Err(TestCaseError::fail(format!("v={v}")))
                }
            })
            .expect_err("property must fail");
        assert!(msg.contains("0 shrink steps"), "{msg}");
    }

    #[test]
    fn rejected_shrink_candidates_do_not_count_as_failures() {
        // Candidates below 50 are rejected; the minimum reachable failing
        // input is therefore the first failing value at/above the original
        // assume boundary — shrinking must stop at 100 (candidates in
        // 50..100 pass, candidates below 50 reject).
        let msg = failure_message(&((0u64..10_000),), |(v,)| {
            if v < 50 {
                Err(TestCaseError::Reject)
            } else if v < 100 {
                Ok(())
            } else {
                Err(TestCaseError::fail(format!("v={v}")))
            }
        })
        .expect("property must fail");
        assert!(
            msg.contains("minimal failing input: (100,)"),
            "reject treated as failure during shrinking: {msg}"
        );
    }
}

//! Value-generation strategies, with greedy shrinking.
//!
//! Shrinking here is value-based rather than proptest's tree-based design:
//! a strategy proposes *strictly simpler* candidates for a failing value
//! ([`Strategy::shrink`]), and the runner greedily re-tests them,
//! restarting from the first candidate that still fails. Integers shrink
//! by binary jumps toward their minimum (halving deltas), vectors by
//! prefix truncation, element removal, and element-wise shrinking.
//! [`Strategy::prop_map`]ped strategies shrink by **regeneration**: the
//! mapping is not invertible, so [`Map`] caches the *source* value it last
//! sampled, shrinks that, and re-maps the candidates; the runner reports
//! which candidate survived ([`Strategy::accept_shrink`]) so the cache can
//! follow the descent. Regeneration composes through tuples and nested
//! maps, and — via the positional `*_at` methods ([`Strategy::sample_at`],
//! [`Strategy::shrink_at`], [`Strategy::accept_shrink_at`],
//! [`Strategy::remove_slot`]) — through collections: [`Map`] keeps one
//! source cache **per element position**, and `vec` threads the position
//! through sampling, shrinking, and removal, so a mapped element strategy
//! deep-shrinks every slot of the vector independently.

use crate::test_runner::TestRng;
use rand::Rng;
use std::cell::RefCell;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes strictly simpler candidates for a failing `value`,
    /// best-first (most aggressive simplification leading). An empty
    /// vector means the value is minimal (or the strategy cannot shrink —
    /// the default).
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let _ = value;
        Vec::new()
    }

    /// Notifies the strategy that candidate `index` of its most recent
    /// [`Strategy::shrink`]`(prev)` call failed the property and became
    /// the new minimal value. Stateless strategies ignore this (the
    /// default); [`Map`] uses it to move its cached *source* value along
    /// the descent, and tuples route it to the component that produced
    /// the candidate.
    fn accept_shrink(&self, prev: &Self::Value, index: usize) {
        let _ = (prev, index);
    }

    /// Positional variant of [`Strategy::sample`], used when this strategy
    /// generates the element at position `pos` of a collection. Stateless
    /// strategies ignore the position (the default); [`Map`] keeps one
    /// regeneration cache per position so collection elements deep-shrink
    /// independently.
    fn sample_at(&self, rng: &mut TestRng, pos: usize) -> Self::Value {
        let _ = pos;
        self.sample(rng)
    }

    /// Positional variant of [`Strategy::shrink`] for the element at
    /// collection position `pos`.
    fn shrink_at(&self, value: &Self::Value, pos: usize) -> Vec<Self::Value> {
        let _ = pos;
        self.shrink(value)
    }

    /// Positional variant of [`Strategy::accept_shrink`] for the element
    /// at collection position `pos`.
    fn accept_shrink_at(&self, prev: &Self::Value, index: usize, pos: usize) {
        let _ = pos;
        self.accept_shrink(prev, index)
    }

    /// Notifies the strategy that the collection element at position
    /// `pos` was removed by a shrink step, so later positions shift down
    /// by one. Stateless strategies ignore this (the default); [`Map`]
    /// drops the corresponding per-position cache to stay aligned.
    fn remove_slot(&self, pos: usize) {
        let _ = pos;
    }

    /// Maps generated values through `f`.
    ///
    /// Mapped strategies shrink by regeneration: the source value behind
    /// the last sample (or accepted candidate) is cached, shrunk with the
    /// inner strategy, and re-mapped — see the [module docs](self).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            inner: self,
            f,
            state: RefCell::new(MapState {
                current: None,
                candidates: Vec::new(),
                slots: Vec::new(),
            }),
        }
    }
}

/// Shrink candidates for an integer, best-first: the target itself (the
/// biggest jump), then binary steps back toward `value` (halving the
/// remaining delta), ending next to `value`. Works in `i128` so every
/// primitive integer type fits; all candidates lie strictly between
/// `target` and `value`, plus `target` itself.
fn int_shrink_candidates(value: i128, target: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if value == target {
        return out;
    }
    out.push(target);
    let mut delta = (value - target) / 2;
    while delta != 0 {
        out.push(value - delta);
        delta /= 2;
    }
    out
}

/// See [`Strategy::prop_map`].
#[derive(Debug)]
pub struct Map<S, F>
where
    S: Strategy,
{
    inner: S,
    f: F,
    /// Regeneration state: the source value behind the last sampled (or
    /// accepted) output, and the sources of the candidates proposed by
    /// the most recent `shrink` call.
    state: RefCell<MapState<S::Value>>,
}

#[derive(Debug)]
struct MapState<V> {
    current: Option<V>,
    candidates: Vec<V>,
    /// Per-position regeneration caches, used when this map generates the
    /// elements of a collection: `slots[pos]` tracks the source behind
    /// the element currently at position `pos` (see the positional
    /// [`Strategy`] methods).
    slots: Vec<MapSlot<V>>,
}

#[derive(Debug)]
struct MapSlot<V> {
    current: Option<V>,
    candidates: Vec<V>,
}

impl<S, F> Clone for Map<S, F>
where
    S: Strategy + Clone,
    F: Clone,
{
    fn clone(&self) -> Self {
        // The clone starts with a fresh cache: regeneration state tracks
        // one sampling stream, not the strategy recipe.
        Map {
            inner: self.inner.clone(),
            f: self.f.clone(),
            state: RefCell::new(MapState {
                current: None,
                candidates: Vec::new(),
                slots: Vec::new(),
            }),
        }
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    S::Value: Clone,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        let source = self.inner.sample(rng);
        let mut state = self.state.borrow_mut();
        state.current = Some(source.clone());
        state.candidates.clear();
        drop(state);
        (self.f)(source)
    }

    /// Regeneration-based shrinking: ignore the (non-invertible) failing
    /// output, shrink the cached *source* with the inner strategy, and
    /// re-map the candidates. The runner's [`Strategy::accept_shrink`]
    /// callback keeps the cache in lock-step with the descent.
    fn shrink(&self, _value: &O) -> Vec<O> {
        let mut state = self.state.borrow_mut();
        let Some(current) = state.current.clone() else {
            return Vec::new();
        };
        let candidates = self.inner.shrink(&current);
        state.candidates = candidates.clone();
        drop(state);
        candidates.into_iter().map(&self.f).collect()
    }

    fn accept_shrink(&self, _prev: &O, index: usize) {
        let mut state = self.state.borrow_mut();
        let Some(source) = state.candidates.get(index).cloned() else {
            return;
        };
        let prev_source = state.current.replace(source);
        drop(state);
        // Nested maps: the inner strategy proposed these candidates from
        // its own cache — let it follow the same descent.
        if let Some(prev_source) = prev_source {
            self.inner.accept_shrink(&prev_source, index);
        }
    }

    // --- Positional (collection-element) regeneration. -----------------
    // Same regeneration scheme as above, but with one cache per element
    // position, so a vector of mapped values deep-shrinks every slot
    // independently. The position threads through to the inner strategy,
    // letting nested maps keep their own per-position caches in step.

    fn sample_at(&self, rng: &mut TestRng, pos: usize) -> O {
        let source = self.inner.sample_at(rng, pos);
        let mut state = self.state.borrow_mut();
        while state.slots.len() <= pos {
            state.slots.push(MapSlot {
                current: None,
                candidates: Vec::new(),
            });
        }
        state.slots[pos].current = Some(source.clone());
        state.slots[pos].candidates.clear();
        drop(state);
        (self.f)(source)
    }

    fn shrink_at(&self, _value: &O, pos: usize) -> Vec<O> {
        let mut state = self.state.borrow_mut();
        let Some(current) = state.slots.get(pos).and_then(|s| s.current.clone()) else {
            return Vec::new();
        };
        let candidates = self.inner.shrink_at(&current, pos);
        state.slots[pos].candidates = candidates.clone();
        drop(state);
        candidates.into_iter().map(&self.f).collect()
    }

    fn accept_shrink_at(&self, _prev: &O, index: usize, pos: usize) {
        let mut state = self.state.borrow_mut();
        let Some(source) = state
            .slots
            .get(pos)
            .and_then(|s| s.candidates.get(index).cloned())
        else {
            return;
        };
        let prev_source = state.slots[pos].current.replace(source);
        drop(state);
        if let Some(prev_source) = prev_source {
            self.inner.accept_shrink_at(&prev_source, index, pos);
        }
    }

    fn remove_slot(&self, pos: usize) {
        let mut state = self.state.borrow_mut();
        if pos < state.slots.len() {
            state.slots.remove(pos);
        }
        drop(state);
        self.inner.remove_slot(pos);
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "whole domain" strategy, for `any::<T>()` and
/// the `name: Type` binder form of [`crate::proptest!`].
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;

    /// Proposes strictly simpler candidates for `value`, best-first
    /// (mirrors [`Strategy::shrink`] for the whole-domain strategy).
    fn shrink(value: &Self) -> Vec<Self> {
        let _ = value;
        Vec::new()
    }
}

macro_rules! arbitrary_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }

            fn shrink(value: &$t) -> Vec<$t> {
                // Halve toward zero (from either sign).
                int_shrink_candidates(*value as i128, 0)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

arbitrary_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rand::RngCore::next_u32(rng) & 1 == 1
    }

    fn shrink(value: &bool) -> Vec<bool> {
        if *value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite uniform values; NaN/inf corners are not worth the noise
        // for the workspace's numeric properties.
        rng.gen_range(-1.0e12..1.0e12)
    }

    fn shrink(value: &f64) -> Vec<f64> {
        if *value == 0.0 || !value.is_finite() {
            return Vec::new();
        }
        vec![0.0, value / 2.0]
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.gen_range(-1.0e6f32..1.0e6)
    }

    fn shrink(value: &f32) -> Vec<f32> {
        if *value == 0.0 || !value.is_finite() {
            return Vec::new();
        }
        vec![0.0, value / 2.0]
    }
}

/// The canonical strategy for an [`Arbitrary`] type.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        T::shrink(value)
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                // Halve toward the range's lower bound; every candidate
                // stays inside the range.
                int_shrink_candidates(*value as i128, self.start as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_candidates(*value as i128, *self.start() as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }

    fn shrink(&self, value: &f64) -> Vec<f64> {
        if *value == self.start {
            return Vec::new();
        }
        [self.start, self.start + (*value - self.start) / 2.0]
            .into_iter()
            .filter(|c| c != value)
            .collect()
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }

    fn shrink(&self, value: &f32) -> Vec<f32> {
        if *value == self.start {
            return Vec::new();
        }
        [self.start, self.start + (*value - self.start) / 2.0]
            .into_iter()
            .filter(|c| c != value)
            .collect()
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // Component-wise: shrink each position while holding the
                // others fixed, earlier components first.
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }

            fn accept_shrink(&self, prev: &Self::Value, index: usize) {
                // Route the flat candidate index back to the component
                // that proposed it (re-deriving the per-component counts
                // is deterministic — mapped components reproduce their
                // cached candidate lists).
                let mut start = 0usize;
                $(
                    let count = self.$idx.shrink(&prev.$idx).len();
                    if index < start + count {
                        self.$idx.accept_shrink(&prev.$idx, index - start);
                        return;
                    }
                    start += count;
                )+
                let _ = start;
            }
        }
    )*};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

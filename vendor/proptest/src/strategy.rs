//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone, Copy)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "whole domain" strategy, for `any::<T>()` and
/// the `name: Type` binder form of [`crate::proptest!`].
pub trait Arbitrary: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

arbitrary_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rand::RngCore::next_u32(rng) & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite uniform values; NaN/inf corners are not worth the noise
        // for the workspace's numeric properties.
        rng.gen_range(-1.0e12..1.0e12)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.gen_range(-1.0e6f32..1.0e6)
    }
}

/// The canonical strategy for an [`Arbitrary`] type.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Returns the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(*self.start()..=*self.end())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

//! Offline vendored mini-proptest.
//!
//! The build environment has no network access, so this crate reimplements
//! the slice of the `proptest` API the workspace's property tests use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(..)]`, `name in
//!   strategy` binders and `name: Type` (≡ `any::<Type>()`) binders,
//! * [`Strategy`] with `prop_map`, range strategies for the primitive
//!   numeric types, tuple strategies up to arity 6,
//! * [`collection::vec`] and [`collection::btree_set`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Case generation is deterministic (fixed-seed ChaCha8). Failing cases
//! are **greedily shrunk**: integers halve toward their minimum, vectors
//! shrink by prefix truncation, element removal, and element-wise
//! simplification, tuples component-wise (see [`strategy::Strategy::shrink`];
//! `prop_map`ped strategies do not shrink — the mapping is not
//! invertible). The failure report shows the minimal failing input. Swap
//! in crates.io `proptest` (edit the `vendor/` path entries in the
//! workspace `Cargo.toml`) for its full tree-based shrinking.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares deterministic property tests.
///
/// Mirrors proptest's macro of the same name: an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn` items whose
/// parameters are either `pattern in strategy` or `name: Type` binders.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($items:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($items)* }
    };
    ($($items:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($items)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each test item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($args:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case! { ($cfg, stringify!($name)) [] [] ($($args)*) $body }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: folds the binder list into one
/// tuple strategy + tuple pattern, then runs the case loop.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // Terminal: all binders consumed.
    ( ($cfg:expr, $name:expr) [$($pat:pat_param),*] [$($strat:expr),*] ($(,)?) $body:block ) => {{
        let config: $crate::test_runner::ProptestConfig = $cfg;
        let mut runner = $crate::test_runner::TestRunner::new(config);
        let strategy = ($($strat,)*);
        let outcome = runner.run($name, &strategy, |($($pat,)*)| {
            $body
            Ok(())
        });
        if let Err(message) = outcome {
            panic!("{}", message);
        }
    }};
    // `pattern in strategy` binder.
    ( ($cfg:expr, $name:expr) [$($pat:pat_param),*] [$($strat:expr),*]
      ($p:pat_param in $s:expr $(, $($rest:tt)*)?) $body:block ) => {
        $crate::__proptest_case! {
            ($cfg, $name) [$($pat,)* $p] [$($strat,)* $s] ($($($rest)*)?) $body
        }
    };
    // `name: Type` binder (≡ `any::<Type>()`).
    ( ($cfg:expr, $name:expr) [$($pat:pat_param),*] [$($strat:expr),*]
      ($p:ident : $t:ty $(, $($rest:tt)*)?) $body:block ) => {
        $crate::__proptest_case! {
            ($cfg, $name) [$($pat,)* $p] [$($strat,)* $crate::strategy::any::<$t>()]
            ($($($rest)*)?) $body
        }
    };
}

/// Asserts a condition inside a property test; a failure triggers the
/// shrinker and fails the test with the minimized case's inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test (values must be `Debug`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        if !(lhs == rhs) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), lhs, rhs
            )));
        }
    }};
}

/// Asserts inequality inside a property test (values must be `Debug`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: {} != {} (both {:?})",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Discards the current case (does not count toward `cases`) when its
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Strategy for `Vec`s with element strategy `S` and a length drawn from a
/// range. See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates `Vec<S::Value>` with lengths drawn uniformly from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        // Positional sampling: a mapped element strategy caches the
        // source behind every position, so each slot deep-shrinks
        // independently later.
        (0..len).map(|i| self.element.sample_at(rng, i)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let len = value.len();
        let min = self.size.start;
        // Prefix shrinks, best-first: all the way down to the minimum
        // generated length, then halving, then dropping the tail element.
        if len > min {
            out.push(value[..min].to_vec());
            let half = len / 2;
            if half > min {
                out.push(value[..half].to_vec());
            }
            if len - 1 > min && len - 1 != half {
                out.push(value[..len - 1].to_vec());
            }
        }
        // Element removal: lets the shrinker discard irrelevant elements
        // anywhere, not just in the tail.
        if len > min {
            for i in 0..len {
                let mut next = value.clone();
                next.remove(i);
                out.push(next);
            }
        }
        // Element-wise shrinking: simplify each position in place with the
        // element strategy's full candidate ladder (the binary descent
        // needs its later rungs to converge on failure boundaries).
        for i in 0..len {
            for candidate in self.element.shrink_at(&value[i], i) {
                let mut next = value.clone();
                next[i] = candidate;
                out.push(next);
            }
        }
        out
    }

    fn accept_shrink(&self, prev: &Vec<S::Value>, index: usize) {
        // Re-derive which segment of the candidate list (prefix
        // truncation, element removal, element-wise) produced candidate
        // `index`, mirroring `shrink`'s construction exactly, and route
        // the acceptance to the element strategy so regeneration caches
        // follow the descent. Re-deriving is deterministic: mapped
        // elements reproduce their cached candidate lists.
        let len = prev.len();
        let min = self.size.start;
        let mut start = 0usize;
        if len > min {
            let mut prefix = 1usize;
            let half = len / 2;
            if half > min {
                prefix += 1;
            }
            if len - 1 > min && len - 1 != half {
                prefix += 1;
            }
            if index < start + prefix {
                // Truncation: caches beyond the new length simply go
                // stale; no element was simplified.
                return;
            }
            start += prefix;
            if index < start + len {
                // Removal of element `index - start`: later positions
                // shift down, so the element strategy must realign its
                // per-position caches.
                self.element.remove_slot(index - start);
                return;
            }
            start += len;
        }
        for (i, elem) in prev.iter().enumerate() {
            let count = self.element.shrink_at(elem, i).len();
            if index < start + count {
                self.element.accept_shrink_at(elem, index - start, i);
                return;
            }
            start += count;
        }
    }
}

/// Strategy for `BTreeSet`s. See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates `BTreeSet<S::Value>` targeting a cardinality drawn uniformly
/// from `size` (duplicates may land below the target, as in proptest).
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = rng.gen_range(self.size.clone());
        let mut out = BTreeSet::new();
        // Bounded retry keeps tiny element domains from spinning forever.
        for _ in 0..target.saturating_mul(4) {
            if out.len() >= target {
                break;
            }
            out.insert(self.element.sample(rng));
        }
        out
    }
}

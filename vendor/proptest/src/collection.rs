//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Strategy for `Vec`s with element strategy `S` and a length drawn from a
/// range. See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates `Vec<S::Value>` with lengths drawn uniformly from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.sample(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let len = value.len();
        let min = self.size.start;
        // Prefix shrinks, best-first: all the way down to the minimum
        // generated length, then halving, then dropping the tail element.
        if len > min {
            out.push(value[..min].to_vec());
            let half = len / 2;
            if half > min {
                out.push(value[..half].to_vec());
            }
            if len - 1 > min && len - 1 != half {
                out.push(value[..len - 1].to_vec());
            }
        }
        // Element removal: lets the shrinker discard irrelevant elements
        // anywhere, not just in the tail.
        if len > min {
            for i in 0..len {
                let mut next = value.clone();
                next.remove(i);
                out.push(next);
            }
        }
        // Element-wise shrinking: simplify each position in place with the
        // element strategy's full candidate ladder (the binary descent
        // needs its later rungs to converge on failure boundaries).
        for i in 0..len {
            for candidate in self.element.shrink(&value[i]) {
                let mut next = value.clone();
                next[i] = candidate;
                out.push(next);
            }
        }
        out
    }
}

/// Strategy for `BTreeSet`s. See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates `BTreeSet<S::Value>` targeting a cardinality drawn uniformly
/// from `size` (duplicates may land below the target, as in proptest).
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = rng.gen_range(self.size.clone());
        let mut out = BTreeSet::new();
        // Bounded retry keeps tiny element domains from spinning forever.
        for _ in 0..target.saturating_mul(4) {
            if out.len() >= target {
                break;
            }
            out.insert(self.element.sample(rng));
        }
        out
    }
}

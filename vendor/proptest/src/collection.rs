//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeSet;
use std::ops::Range;

/// Strategy for `Vec`s with element strategy `S` and a length drawn from a
/// range. See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates `Vec<S::Value>` with lengths drawn uniformly from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Strategy for `BTreeSet`s. See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates `BTreeSet<S::Value>` targeting a cardinality drawn uniformly
/// from `size` (duplicates may land below the target, as in proptest).
pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = rng.gen_range(self.size.clone());
        let mut out = BTreeSet::new();
        // Bounded retry keeps tiny element domains from spinning forever.
        for _ in 0..target.saturating_mul(4) {
            if out.len() >= target {
                break;
            }
            out.insert(self.element.sample(rng));
        }
        out
    }
}

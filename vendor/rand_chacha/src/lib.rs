//! Offline vendored [`ChaCha8Rng`]: a real ChaCha stream cipher core with 8
//! rounds, driving the vendored `rand` traits.
//!
//! The build environment has no network access, so this replaces the
//! crates.io `rand_chacha` crate. The keystream is genuine RFC-8439-layout
//! ChaCha (8 rounds, word-at-a-time little-endian output); it is *not*
//! guaranteed to be stream-compatible with crates.io `rand_chacha`, and the
//! repo's reference transcripts are defined by this implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

/// A deterministic ChaCha random number generator with 8 rounds.
#[derive(Clone, PartialEq, Eq)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, 8 key words, 64-bit counter, 2 nonce
    /// words (zero — one independent stream per seed is all we need).
    state: [u32; BLOCK_WORDS],
    /// Current output block.
    buffer: [u32; BLOCK_WORDS],
    /// Next unread word in `buffer`; `BLOCK_WORDS` forces a refill.
    index: usize,
}

impl std::fmt::Debug for ChaCha8Rng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Deliberately terse: dumping keystream state is never useful and
        // protocol contexts embed this in their own Debug output.
        f.debug_struct("ChaCha8Rng").finish_non_exhaustive()
    }
}

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: 4 column + 4 diagonal quarter rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self
            .buffer
            .iter_mut()
            .zip(working.iter().zip(self.state.iter()))
        {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            state,
            buffer: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..100).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..100).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..100).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_looks_uniform() {
        // Crude sanity: bit balance over a few thousand words.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..4096).map(|_| rng.next_u32().count_ones()).sum();
        let total = 4096 * 32;
        let frac = f64::from(ones) / f64::from(total);
        assert!((0.49..0.51).contains(&frac), "bit balance {frac}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            rng.next_u32();
        }
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
    }
}

//! Offline vendored `serde` façade.
//!
//! The build environment has no network access, so this crate supplies the
//! surface the workspace actually uses today: the [`Serialize`] /
//! [`Deserialize`] *names* for derive attributes and trait bounds. Nothing
//! in the workspace serializes yet — the derives (from the vendored
//! `serde_derive`) expand to nothing and the traits are blanket-implemented
//! markers, so every `#[derive(Serialize, Deserialize)]` type keeps
//! compiling unchanged when the real crates.io `serde` is swapped back in
//! (edit the `vendor/` path entries in the workspace `Cargo.toml`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for serde's `Serialize` trait.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for serde's `Deserialize` trait.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Deserialization helpers namespace (subset).
pub mod de {
    /// Marker stand-in for serde's `DeserializeOwned`.
    pub trait DeserializeOwned {}

    impl<T: ?Sized> DeserializeOwned for T {}
}

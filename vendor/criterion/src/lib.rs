//! Offline vendored mini-criterion.
//!
//! The build environment has no network access, so this crate reimplements
//! the slice of the `criterion` API the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_with_input`] /
//! [`BenchmarkGroup::bench_function`], [`BenchmarkId`], [`Throughput`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros —
//! as a plain wall-clock harness.
//!
//! Each benchmark warms up for `warm_up_time`, then runs `sample_size`
//! samples for `measurement_time` total, and prints mean/min/max time per
//! iteration plus throughput (elements/sec) when configured. No statistics
//! beyond that, no HTML reports, no comparison against saved baselines:
//! results print to stdout and the perf trajectory lives in committed logs
//! (see `ROADMAP.md`). Swap in crates.io `criterion` (edit the `vendor/`
//! path entries in the workspace `Cargo.toml`) for the full machinery.
//!
//! Two CLI conventions of real criterion are honoured so CI can smoke-test
//! the benches: `--test` runs every selected benchmark exactly once
//! (timing that single pass, so results are quick but noisy), and a
//! positional argument filters benchmarks by substring of their full label
//! (so `cargo bench -p bcount-bench engine -- --test` exercises the engine
//! group and compiles-but-skips the rest). Other flags are ignored.
//!
//! **JSON artifacts.** When the `BCOUNT_BENCH_JSON` environment variable
//! names a file, every completed benchmark appends a record and the file
//! is rewritten as a `bcount-bench/v1` document:
//! `{"schema":"bcount-bench/v1","records":[{label, mode, mean_ns, min_ns,
//! max_ns, samples, iters_per_sample, throughput_count?, throughput_unit?,
//! rate_per_sec?}]}`. The CI perf gate (`bcount-bench`'s `gate` bin)
//! compares such artifacts against the committed `BENCH_BASELINE.json`,
//! so bench smoke runs and the perf gate share this one code path. On
//! Linux the document also carries a top-level `peak_rss_kb` — the
//! process's `VmHWM` high-water mark, so scale-tier artifacts record the
//! memory footprint alongside rounds/sec; the field is omitted where
//! procfs is unavailable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Pre-rendered JSON record objects for the `BCOUNT_BENCH_JSON` artifact,
/// accumulated across groups within one bench process.
static JSON_RECORDS: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// One benchmark's measurement, as recorded in the JSON artifact.
struct JsonRecord<'a> {
    label: &'a str,
    mode: &'a str,
    mean: Duration,
    min: Duration,
    max: Duration,
    samples: usize,
    iters_per_sample: u64,
    throughput: Option<Throughput>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn emit_json_record(record: &JsonRecord<'_>) {
    let path = match std::env::var("BCOUNT_BENCH_JSON") {
        Ok(p) if !p.is_empty() => p,
        _ => return,
    };
    let mut body = format!(
        "{{\"label\":\"{}\",\"mode\":\"{}\",\"mean_ns\":{},\"min_ns\":{},\"max_ns\":{},\"samples\":{},\"iters_per_sample\":{}",
        json_escape(record.label),
        record.mode,
        record.mean.as_nanos(),
        record.min.as_nanos(),
        record.max.as_nanos(),
        record.samples,
        record.iters_per_sample,
    );
    if let Some(t) = record.throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elements"),
            Throughput::Bytes(n) => (n, "bytes"),
        };
        body.push_str(&format!(
            ",\"throughput_count\":{count},\"throughput_unit\":\"{unit}\""
        ));
        if !record.mean.is_zero() {
            let rate = count as f64 / record.mean.as_secs_f64();
            // `{:?}` keeps the shortest round-trip float representation;
            // rates are always finite here (mean > 0).
            body.push_str(&format!(",\"rate_per_sec\":{rate:?}"));
        }
    }
    body.push('}');
    let mut records = JSON_RECORDS.lock().expect("bench JSON collector poisoned");
    records.push(body);
    // Rewrite the whole document after every record: record counts are
    // tiny, and this way partial runs still leave a valid artifact.
    let rss = match peak_rss_kb() {
        Some(kb) => format!("\"peak_rss_kb\":{kb},"),
        None => String::new(),
    };
    let doc = format!(
        "{{\"schema\":\"bcount-bench/v1\",{rss}\"records\":[{}]}}\n",
        records.join(",")
    );
    if let Err(e) = std::fs::write(&path, doc) {
        eprintln!("warning: could not write BCOUNT_BENCH_JSON={path}: {e}");
    }
}

/// The process's peak resident set size in kB (`VmHWM` from
/// `/proc/self/status`), or `None` off Linux / without procfs. Duplicated
/// from `bcount_sim::rss` because the vendored harness must stay
/// dependency-free.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Top-level benchmark driver (configuration container).
pub struct Criterion {
    default_warm_up: Duration,
    default_measurement: Duration,
    default_sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" | "--quick" => test_mode = true,
                // Harness flags cargo or users may pass; no-ops here.
                s if s.starts_with('-') => {}
                // First positional argument: substring label filter.
                s => {
                    if filter.is_none() {
                        filter = Some(s.to_owned());
                    }
                }
            }
        }
        Criterion {
            default_warm_up: Duration::from_millis(500),
            default_measurement: Duration::from_secs(3),
            default_sample_size: 20,
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up: self.default_warm_up,
            measurement: self.default_measurement,
            sample_size: self.default_sample_size,
            throughput: None,
            test_mode: self.test_mode,
            filter: self.filter.clone(),
            _criterion: std::marker::PhantomData,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_owned());
        group.bench_function("", f);
        group.finish();
    }
}

/// Units for reporting how much work one iteration performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// One iteration processes this many abstract elements (the engine
    /// benches use rounds × nodes, reported as elem/s).
    Elements(u64),
    /// One iteration processes this many bytes.
    Bytes(u64),
}

/// A named set of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
    filter: Option<String>,
    _criterion: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement duration budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Declares the per-iteration work, enabling throughput reporting for
    /// subsequent benchmarks in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` with `input`, labelled by `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.render(), |b| f(b, input));
        self
    }

    /// Benchmarks `f`, labelled by `id`.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.into_benchmark_id().render(), |b| f(b));
        self
    }

    /// Ends the group (prints nothing extra; kept for API parity).
    pub fn finish(self) {}

    fn run_one(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = if label.is_empty() {
            self.name.clone()
        } else {
            format!("{}/{}", self.name, label)
        };
        if let Some(filter) = &self.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            // Smoke mode (`-- --test`): one iteration, timed but with no
            // warm-up or sampling, so compile or panic regressions surface
            // without a measurement budget and the JSON artifact still
            // carries a (noisy) quick measurement for the perf gate.
            let mut bencher = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            emit_json_record(&JsonRecord {
                label: &full,
                mode: "test",
                mean: bencher.elapsed,
                min: bencher.elapsed,
                max: bencher.elapsed,
                samples: 1,
                iters_per_sample: 1,
                throughput: self.throughput,
            });
            println!("{full:<50} test mode: 1 iteration ok");
            return;
        }
        // Warm-up: run whole samples until the warm-up budget elapses.
        let warm_until = Instant::now() + self.warm_up;
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        while Instant::now() < warm_until {
            f(&mut bencher);
        }
        // Calibrate iterations per sample from the last warm-up sample.
        let per_iter = bencher
            .elapsed
            .checked_div(bencher.iters as u32)
            .unwrap_or_default();
        let budget = self.measurement.as_nanos() / self.sample_size.max(1) as u128;
        let iters = if per_iter.is_zero() {
            1
        } else {
            (budget / per_iter.as_nanos().max(1)).clamp(1, u128::from(u32::MAX)) as u64
        };
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.checked_div(iters as u32).unwrap_or_default());
        }
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        emit_json_record(&JsonRecord {
            label: &full,
            mode: "measure",
            mean,
            min,
            max,
            samples: samples.len(),
            iters_per_sample: iters,
            throughput: self.throughput,
        });
        let mut line = format!(
            "{full:<50} time: [{} {} {}]",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max)
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem/s"),
                Throughput::Bytes(n) => (n, "B/s"),
            };
            if !mean.is_zero() {
                let rate = count as f64 / mean.as_secs_f64();
                line.push_str(&format!("  thrpt: {} {unit}", fmt_rate(rate)));
            }
        }
        println!("{line}");
    }
}

fn fmt_time(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1.0e9 {
        format!("{:.3}G", rate / 1.0e9)
    } else if rate >= 1.0e6 {
        format!("{:.3}M", rate / 1.0e6)
    } else if rate >= 1.0e3 {
        format!("{:.3}K", rate / 1.0e3)
    } else {
        format!("{rate:.1}")
    }
}

/// Times the closure under measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` the harness-chosen number of iterations and records the
    /// wall-clock total.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark label: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Labels a benchmark with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Labels a benchmark by parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::new(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], so `bench_function` accepts both ids
/// and plain strings.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self.to_owned()),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: Some(self),
            parameter: None,
        }
    }
}

/// Declares a benchmark group function runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

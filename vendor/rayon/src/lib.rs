//! Offline vendored rayon subset, backed by a **persistent worker pool**.
//!
//! The build environment has no network access, so this crate provides the
//! fork-join primitives the simulator's `parallel` feature builds on. Since
//! PR 4 it is a real pool, not a spawn-per-call shim:
//!
//! * **Long-lived workers** — the global pool's threads are created once
//!   (lazily, on first use) and live for the process. The pool size comes
//!   from `BCOUNT_POOL_THREADS` when set, else
//!   [`std::thread::available_parallelism`]. A pool of size `k` spawns
//!   `k − 1` workers: the calling thread always participates, so a size-1
//!   pool is the degenerate serial configuration with **zero** threads and
//!   zero synchronization (every [`join`] runs inline).
//! * **Chunked shared-injector deque** — jobs go into one shared deque;
//!   workers pop FIFO from the front, while threads *waiting* on a join or
//!   scope steal LIFO from the back (most recently pushed — their own
//!   fork's job or one of its descendants, in the common case). A waiting
//!   thread never blocks while runnable work exists, which is what makes
//!   nested `join`s deadlock-free: every waiter drains the queue before
//!   parking, so a queued job can always be claimed by *some* thread that
//!   is guaranteed to run it.
//! * **Call-compatible surface** — [`join`], [`scope`],
//!   [`current_num_threads`], [`ThreadPool`] (`install`,
//!   `current_num_threads`) and [`ThreadPoolBuilder`] (`num_threads`,
//!   `build`) match the crates.io signatures, so swapping the real crate
//!   back in (edit the `vendor/` path entries in the workspace
//!   `Cargo.toml`) is a no-op for callers and buys back lock-free deques.
//!
//! One documented divergence: [`ThreadPool::install`] runs the closure on
//! the *calling* thread with the pool made current (crates.io migrates it
//! onto a worker). Transcript-determinism is unaffected — callers in this
//! workspace never depend on which thread executes.
//!
//! # Safety
//!
//! This crate contains the workspace's only `unsafe` code (mirroring the
//! real rayon, whose core is likewise unsafe): [`join`] and
//! [`Scope::spawn`] erase the lifetime of a closure so it can sit in the
//! shared queue while borrowing the forking stack frame. Soundness rests on
//! one invariant, upheld by construction and spelled out at each call site:
//! **the forking call does not return — not even by unwinding — until the
//! erased job has finished running**, so every borrow the closure captures
//! strictly outlives its execution.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

/// A lifetime-erased unit of work in the shared deque.
type Job = Box<dyn FnOnce() + Send>;

/// Environment variable overriding the global pool size.
pub const POOL_THREADS_ENV: &str = "BCOUNT_POOL_THREADS";

// ---------------------------------------------------------------------------
// Pool internals.
// ---------------------------------------------------------------------------

struct PoolState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// The shared heart of a pool: the injector deque plus its size. Workers,
/// forking threads, and `ThreadPool` handles all hold an `Arc` of this.
struct PoolShared {
    threads: usize,
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

impl PoolShared {
    fn new(threads: usize) -> Self {
        PoolShared {
            threads,
            state: Mutex::new(PoolState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        }
    }

    /// Pushes a job on the back of the deque and wakes one worker.
    fn inject(&self, job: Job) {
        let mut state = self.state.lock().expect("pool mutex poisoned");
        state.jobs.push_back(job);
        drop(state);
        self.work_ready.notify_one();
    }

    /// LIFO pop from the back — the waiting-thread steal path.
    fn try_pop_back(&self) -> Option<Job> {
        self.state
            .lock()
            .expect("pool mutex poisoned")
            .jobs
            .pop_back()
    }

    /// Worker loop body: FIFO-pop jobs until shutdown.
    fn run_worker(self: &Arc<Self>) {
        CURRENT_POOL.with(|current| *current.borrow_mut() = Some(Arc::clone(self)));
        loop {
            let job = {
                let mut state = self.state.lock().expect("pool mutex poisoned");
                loop {
                    if let Some(job) = state.jobs.pop_front() {
                        break Some(job);
                    }
                    if state.shutdown {
                        break None;
                    }
                    state = self.work_ready.wait(state).expect("pool mutex poisoned");
                }
            };
            match job {
                // Jobs capture their own panics into join slots / scope
                // latches; the catch here only shields the worker loop from
                // a hypothetical leak so the pool can never lose a thread.
                Some(job) => {
                    let _ = catch_unwind(AssertUnwindSafe(job));
                }
                None => return,
            }
        }
    }
}

thread_local! {
    /// The pool the current thread forks into: set for workers (their own
    /// pool) and inside [`ThreadPool::install`]; everyone else uses the
    /// global pool.
    static CURRENT_POOL: RefCell<Option<Arc<PoolShared>>> = const { RefCell::new(None) };
}

fn current_shared() -> Arc<PoolShared> {
    CURRENT_POOL
        .with(|current| current.borrow().clone())
        .unwrap_or_else(|| Arc::clone(&global_pool().shared))
}

fn global_pool() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        ThreadPoolBuilder::new()
            .build()
            .expect("spawn global pool workers")
    })
}

/// The global pool size: `BCOUNT_POOL_THREADS` when set and sane, else the
/// machine's available parallelism.
fn default_threads() -> usize {
    if let Ok(value) = std::env::var(POOL_THREADS_ENV) {
        if let Ok(n) = value.trim().parse::<usize>() {
            return n.clamp(1, 1024);
        }
    }
    thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The parallelism of the current pool (the global pool unless running on
/// a [`ThreadPool`]'s worker or inside [`ThreadPool::install`]). Callers
/// use it to pick chunk sizes.
pub fn current_num_threads() -> usize {
    current_shared().threads
}

// ---------------------------------------------------------------------------
// ThreadPool / ThreadPoolBuilder.
// ---------------------------------------------------------------------------

/// Error building a [`ThreadPool`] (worker spawn failure).
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    message: String,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build failed: {}", self.message)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builds [`ThreadPool`]s; mirrors the crates.io builder surface.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (global sizing rules).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the pool size. As on crates.io, `0` means "use the default"
    /// (`BCOUNT_POOL_THREADS` or the machine parallelism).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = Some(num_threads);
        self
    }

    /// Spawns the workers and returns the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = match self.num_threads {
            Some(0) | None => default_threads(),
            Some(n) => n.clamp(1, 1024),
        };
        let shared = Arc::new(PoolShared::new(threads));
        // The forking thread participates, so `threads - 1` workers give a
        // total parallelism of `threads`; a size-1 pool is fully inline.
        let mut workers = Vec::new();
        for index in 1..threads {
            let worker_shared = Arc::clone(&shared);
            match thread::Builder::new()
                .name(format!("bcount-pool-{index}"))
                .spawn(move || worker_shared.run_worker())
            {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Don't leak the workers that did start: they would
                    // otherwise park on `work_ready` forever, pinning
                    // their threads and the pool state for the process.
                    {
                        let mut state = shared.state.lock().expect("pool mutex poisoned");
                        state.shutdown = true;
                    }
                    shared.work_ready.notify_all();
                    for handle in workers {
                        let _ = handle.join();
                    }
                    return Err(ThreadPoolBuildError {
                        message: e.to_string(),
                    });
                }
            }
        }
        Ok(ThreadPool { shared, workers })
    }
}

/// A persistent worker pool. The process-wide global pool is built lazily
/// on first [`join`]/[`scope`]; explicit pools (determinism tests, sizing
/// experiments) are built with [`ThreadPoolBuilder`] and entered with
/// [`ThreadPool::install`].
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Runs `op` with this pool as the current fork target: every [`join`]
    /// and [`scope`] reached from inside (including from this pool's
    /// workers) schedules onto this pool.
    ///
    /// Unlike crates.io rayon, `op` runs on the *calling* thread rather
    /// than being migrated onto a worker; callers in this workspace never
    /// observe the difference (transcripts are thread-placement
    /// independent).
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        struct Restore(Option<Arc<PoolShared>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let previous = self.0.take();
                CURRENT_POOL.with(|current| *current.borrow_mut() = previous);
            }
        }
        let previous =
            CURRENT_POOL.with(|current| current.borrow_mut().replace(Arc::clone(&self.shared)));
        let _restore = Restore(previous);
        op()
    }

    /// This pool's total parallelism (workers + the participating caller).
    pub fn current_num_threads(&self) -> usize {
        self.shared.threads
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool mutex poisoned");
            state.shutdown = true;
        }
        self.work_ready_broadcast();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl ThreadPool {
    fn work_ready_broadcast(&self) {
        self.shared.work_ready.notify_all();
    }
}

// ---------------------------------------------------------------------------
// join.
// ---------------------------------------------------------------------------

/// Where a forked closure's outcome lands: the forking thread blocks (or
/// help-runs queued jobs) until the slot fills.
struct JoinSlot<R> {
    result: Mutex<Option<thread::Result<R>>>,
    done: Condvar,
}

impl<R> JoinSlot<R> {
    fn new() -> Self {
        JoinSlot {
            result: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn complete(&self, result: thread::Result<R>) {
        *self.result.lock().expect("join slot poisoned") = Some(result);
        self.done.notify_all();
    }
}

/// Helps the pool until `slot` fills, then takes the result. The waiting
/// thread steals queued jobs (LIFO) instead of parking whenever work is
/// available — the property that makes nested joins deadlock-free.
fn wait_join<R>(shared: &PoolShared, slot: &JoinSlot<R>) -> thread::Result<R> {
    loop {
        if let Some(result) = slot.result.lock().expect("join slot poisoned").take() {
            return result;
        }
        if let Some(job) = shared.try_pop_back() {
            job();
            continue;
        }
        // No runnable work: park briefly on the slot's condvar. The
        // timeout re-checks the queue, closing the race where a nested
        // fork injects a job between our pop attempt and the wait.
        let mut guard = slot.result.lock().expect("join slot poisoned");
        // A completion can land between the unlocked check above and
        // taking this lock; consume it here rather than sleeping out the
        // full timeout on a notify that already happened.
        if let Some(result) = guard.take() {
            return result;
        }
        let (mut guard, _) = slot
            .done
            .wait_timeout(guard, Duration::from_micros(200))
            .expect("join slot poisoned");
        if let Some(result) = guard.take() {
            return result;
        }
    }
}

/// Runs both closures, potentially in parallel, returning both results.
///
/// `oper_a` runs on the calling thread; `oper_b` is pushed to the current
/// pool's injector, where an idle worker (or this thread, stealing it back
/// after finishing `oper_a`) picks it up. On a size-1 pool both simply run
/// inline. Panics in either closure propagate to the caller (after both
/// have finished).
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let shared = current_shared();
    if shared.threads <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    let slot: Arc<JoinSlot<RB>> = Arc::new(JoinSlot::new());
    let completer = Arc::clone(&slot);
    let job: Box<dyn FnOnce() + Send + '_> =
        Box::new(move || completer.complete(catch_unwind(AssertUnwindSafe(oper_b))));
    // SAFETY: the erased job borrows this stack frame (through `oper_b`'s
    // captures). Every path out of this function first runs `wait_join`,
    // which returns only once the job has executed and filled `slot` — so
    // the borrows outlive the job even when `oper_a` panics.
    let job: Job = unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
    shared.inject(job);
    let ra = match catch_unwind(AssertUnwindSafe(oper_a)) {
        Ok(ra) => ra,
        Err(panic) => {
            let _ = wait_join(&shared, &slot);
            resume_unwind(panic);
        }
    };
    match wait_join(&shared, &slot) {
        Ok(rb) => (ra, rb),
        Err(panic) => resume_unwind(panic),
    }
}

// ---------------------------------------------------------------------------
// scope.
// ---------------------------------------------------------------------------

struct ScopeLatch {
    pending: Mutex<usize>,
    all_done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeLatch {
    fn new() -> Self {
        ScopeLatch {
            pending: Mutex::new(0),
            all_done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn increment(&self) {
        *self.pending.lock().expect("scope latch poisoned") += 1;
    }

    fn finish(&self, panic: Option<Box<dyn Any + Send>>) {
        if let Some(panic) = panic {
            let mut slot = self.panic.lock().expect("scope latch poisoned");
            if slot.is_none() {
                *slot = Some(panic);
            }
        }
        let mut pending = self.pending.lock().expect("scope latch poisoned");
        *pending -= 1;
        if *pending == 0 {
            drop(pending);
            self.all_done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *self.pending.lock().expect("scope latch poisoned") == 0
    }
}

/// A fork scope handed to [`scope`]'s closure; spawned tasks may borrow
/// anything that outlives `'scope`.
pub struct Scope<'scope> {
    shared: Arc<PoolShared>,
    latch: Arc<ScopeLatch>,
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns `body` onto the scope's pool. The task may itself spawn
    /// further tasks through the scope reference it receives.
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.latch.increment();
        if self.shared.threads <= 1 {
            let nested = Scope {
                shared: Arc::clone(&self.shared),
                latch: Arc::clone(&self.latch),
                _marker: PhantomData,
            };
            let result = catch_unwind(AssertUnwindSafe(|| body(&nested)));
            self.latch.finish(result.err());
            return;
        }
        let shared = Arc::clone(&self.shared);
        let latch = Arc::clone(&self.latch);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let nested = Scope {
                shared: Arc::clone(&shared),
                latch: Arc::clone(&latch),
                _marker: PhantomData,
            };
            let result = catch_unwind(AssertUnwindSafe(|| body(&nested)));
            latch.finish(result.err());
        });
        // SAFETY: `scope` does not return (not even by unwinding) until
        // the latch reports every spawned task finished, so the borrows
        // captured by `body` outlive the job's execution.
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
        self.shared.inject(job);
    }
}

/// Creates a fork scope: tasks spawned inside may borrow from the caller's
/// stack, and `scope` returns only once every task has completed. The
/// first task panic (or a panic in `op` itself) propagates to the caller.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let fork_scope = Scope {
        shared: current_shared(),
        latch: Arc::new(ScopeLatch::new()),
        _marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| op(&fork_scope)));
    // Help-run queued jobs until every spawned task has finished.
    loop {
        if fork_scope.latch.is_done() {
            break;
        }
        if let Some(job) = fork_scope.shared.try_pop_back() {
            job();
            continue;
        }
        let pending = fork_scope
            .latch
            .pending
            .lock()
            .expect("scope latch poisoned");
        if *pending == 0 {
            break;
        }
        let _ = fork_scope
            .latch
            .all_done
            .wait_timeout(pending, Duration::from_micros(200))
            .expect("scope latch poisoned");
    }
    if let Some(panic) = fork_scope
        .latch
        .panic
        .lock()
        .expect("scope latch poisoned")
        .take()
    {
        resume_unwind(panic);
    }
    match result {
        Ok(value) => value,
        Err(panic) => resume_unwind(panic),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_runs_closures_concurrently_safe_with_borrows() {
        let data: Vec<u64> = (0..1000).collect();
        let (left, right) = data.split_at(500);
        let (sa, sb) = join(|| left.iter().sum::<u64>(), || right.iter().sum::<u64>());
        assert_eq!(sa + sb, data.iter().sum::<u64>());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate() {
        join(|| (), || panic!("boom"));
    }

    #[test]
    fn nested_joins_complete_on_small_pools() {
        // A fork tree deeper than the worker count exercises the
        // steal-back path: waiting threads must run queued jobs.
        fn sum(range: std::ops::Range<u64>) -> u64 {
            let len = range.end - range.start;
            if len <= 8 {
                return range.sum();
            }
            let mid = range.start + len / 2;
            let (a, b) = join(|| sum(range.start..mid), || sum(mid..range.end));
            a + b
        }
        for threads in [1, 2, 4] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let total = pool.install(|| sum(0..10_000));
            assert_eq!(total, 10_000 * 9_999 / 2, "threads={threads}");
        }
    }

    #[test]
    fn install_routes_current_num_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
        // Back outside, the global sizing rules apply again.
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn workers_are_persistent_across_joins() {
        // Many sequential joins on one pool must not grow the thread
        // count: record the distinct worker thread ids seen.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let ids = Mutex::new(std::collections::HashSet::new());
        pool.install(|| {
            for _ in 0..100 {
                join(
                    || {
                        ids.lock().unwrap().insert(thread::current().id());
                    },
                    || {
                        ids.lock().unwrap().insert(thread::current().id());
                    },
                );
            }
        });
        // Caller + at most 3 workers.
        assert!(ids.lock().unwrap().len() <= 4);
    }

    #[test]
    fn scope_waits_for_all_spawns() {
        let counter = AtomicUsize::new(0);
        for threads in [1, 4] {
            counter.store(0, Ordering::SeqCst);
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                scope(|s| {
                    for _ in 0..32 {
                        s.spawn(|inner| {
                            counter.fetch_add(1, Ordering::SeqCst);
                            inner.spawn(|_| {
                                counter.fetch_add(1, Ordering::SeqCst);
                            });
                        });
                    }
                });
            });
            assert_eq!(counter.load(Ordering::SeqCst), 64, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "scope boom")]
    fn scope_propagates_task_panics() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            scope(|s| {
                s.spawn(|_| panic!("scope boom"));
            });
        });
    }

    #[test]
    fn size_one_pool_is_fully_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let caller = thread::current().id();
        pool.install(|| {
            let (a, b) = join(|| thread::current().id(), || thread::current().id());
            assert_eq!(a, caller);
            assert_eq!(b, caller);
        });
    }
}

//! Offline vendored rayon subset, backed by a **persistent work-stealing
//! pool**.
//!
//! The build environment has no network access, so this crate provides the
//! fork-join primitives the simulator's `parallel` feature builds on. Since
//! PR 4 it is a real pool, and since PR 7 a genuinely multicore one:
//!
//! * **Long-lived workers** — the global pool's threads are created once
//!   (lazily, on first use) and live for the process. The pool size comes
//!   from `BCOUNT_POOL_THREADS` when set, else
//!   [`std::thread::available_parallelism`]. A pool of size `k` spawns
//!   `k − 1` workers: the calling thread always participates, so a size-1
//!   pool is the degenerate serial configuration with **zero** threads and
//!   zero synchronization (every [`join`] runs inline).
//! * **Per-worker deques + a global injector** — each worker owns a deque
//!   ([`sched::WorkerDeque`]): it pushes and pops its own forks at the
//!   bottom (LIFO, the cache-hot end) while other workers steal from the
//!   top (FIFO, the oldest and largest-granularity work). Threads that are
//!   not workers of the pool submit through the global injector
//!   ([`sched::Injector`]), which workers drain FIFO; an external thread
//!   waiting on its own fork steals back LIFO from the injector, then
//!   FIFO from the worker deques. A waiting thread never blocks while
//!   runnable work exists, which is what makes nested `join`s
//!   deadlock-free: every waiter drains the queues before parking, so a
//!   queued job can always be claimed by *some* thread that runs it.
//! * **Event-driven parking** — idle threads park on one pool-wide
//!   condvar instead of polling on a timeout. A parker increments the
//!   `SeqCst` sleeper count, re-checks every queue (and its own wait
//!   condition) *after* the increment while holding the sleep lock, and
//!   only then waits; producers push, then look at the sleeper count and
//!   notify through the same lock. If a producer reads zero sleepers, the
//!   parker's increment — and therefore its re-check — is ordered after
//!   the push, so the re-check observes the job and the parker never
//!   sleeps through a wakeup. The `tests/schedules.rs` harness enumerates
//!   interleavings of exactly this protocol.
//! * **Call-compatible surface** — [`join`], [`scope`],
//!   [`current_num_threads`], [`ThreadPool`] (`install`,
//!   `current_num_threads`) and [`ThreadPoolBuilder`] (`num_threads`,
//!   `build`) match the crates.io signatures, so swapping the real crate
//!   back in (edit the `vendor/` path entries in the workspace
//!   `Cargo.toml`) is a no-op for callers and buys back lock-free deques.
//!
//! One documented divergence: [`ThreadPool::install`] runs the closure on
//! the *calling* thread with the pool made current (crates.io migrates it
//! onto a worker). Transcript-determinism is unaffected — callers in this
//! workspace never depend on which thread executes.
//!
//! # Safety
//!
//! This crate contains the workspace's only `unsafe` code (mirroring the
//! real rayon, whose core is likewise unsafe): [`join`] and
//! [`Scope::spawn`] erase the lifetime of a closure so it can sit in a
//! work queue while borrowing the forking stack frame. Soundness rests on
//! one invariant, upheld by construction and spelled out at each call site:
//! **the forking call does not return — not even by unwinding — until the
//! erased job has finished running**, so every borrow the closure captures
//! strictly outlives its execution.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod sched;

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

use sched::{steal_order, Injector, WorkerDeque};

/// A lifetime-erased unit of work in the pool's queues.
type Job = Box<dyn FnOnce() + Send>;

/// Environment variable overriding the global pool size.
pub const POOL_THREADS_ENV: &str = "BCOUNT_POOL_THREADS";

// ---------------------------------------------------------------------------
// Pool internals.
// ---------------------------------------------------------------------------

/// The shared heart of a pool: the injector, the per-worker deques, and
/// the parking state. Workers, forking threads, and `ThreadPool` handles
/// all hold an `Arc` of this.
struct PoolShared {
    threads: usize,
    injector: Mutex<Injector<Job>>,
    /// One deque per worker thread (`threads - 1` of them; the
    /// participating caller has none and goes through the injector).
    deques: Box<[Mutex<WorkerDeque<Job>>]>,
    /// The sleep lock: guards the shutdown flag and serializes the
    /// park/notify handshake. Parkers hold it across their post-increment
    /// re-check and the condvar wait; producers take it (empty critical
    /// section) before notifying, so a notification cannot slip into the
    /// gap between a parker's re-check and its wait.
    sleep: Mutex<bool>,
    work_ready: Condvar,
    /// Number of threads between their sleeper increment and decrement.
    /// `SeqCst` so a producer that reads zero knows the parker's
    /// subsequent re-check is ordered after the producer's push.
    sleepers: AtomicUsize,
}

impl PoolShared {
    fn new(threads: usize) -> Self {
        let deques = (1..threads)
            .map(|_| Mutex::new(WorkerDeque::new()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        PoolShared {
            threads,
            injector: Mutex::new(Injector::new()),
            deques,
            sleep: Mutex::new(false),
            work_ready: Condvar::new(),
            sleepers: AtomicUsize::new(0),
        }
    }

    /// The calling thread's worker index *in this pool*, if it is one of
    /// this pool's workers.
    fn worker_index(&self) -> Option<usize> {
        WORKER
            .with(|w| w.get())
            .and_then(|(pool, index)| (pool == self as *const PoolShared as usize).then_some(index))
    }

    /// Queues a fork: a worker of this pool pushes onto the bottom of its
    /// own deque; everyone else goes through the global injector. Wakes
    /// sleepers either way.
    fn schedule(&self, job: Job) {
        match self.worker_index() {
            Some(index) => self.deques[index]
                .lock()
                .expect("worker deque poisoned")
                .push_bottom(job),
            None => self.injector.lock().expect("injector poisoned").push(job),
        }
        self.notify_work();
    }

    /// Claims a runnable job, if any, in the caller's acquisition order:
    /// a worker pops its own bottom (LIFO), then drains the injector
    /// (FIFO), then steals the other deques' tops round-robin; an
    /// external thread steals back from the injector (LIFO — its own most
    /// recent fork), then steals the deque tops.
    fn find_work(&self) -> Option<Job> {
        match self.worker_index() {
            Some(index) => {
                if let Some(job) = self.deques[index]
                    .lock()
                    .expect("worker deque poisoned")
                    .pop_bottom()
                {
                    return Some(job);
                }
                if let Some(job) = self.injector.lock().expect("injector poisoned").steal() {
                    return Some(job);
                }
                for victim in steal_order(index, self.deques.len()) {
                    if let Some(job) = self.deques[victim]
                        .lock()
                        .expect("worker deque poisoned")
                        .steal_top()
                    {
                        return Some(job);
                    }
                }
                None
            }
            None => {
                if let Some(job) = self.injector.lock().expect("injector poisoned").pop_back() {
                    return Some(job);
                }
                for victim in 0..self.deques.len() {
                    if let Some(job) = self.deques[victim]
                        .lock()
                        .expect("worker deque poisoned")
                        .steal_top()
                    {
                        return Some(job);
                    }
                }
                None
            }
        }
    }

    /// Whether any queue holds a job. Called by parkers during their
    /// under-the-sleep-lock re-check; producers never take the sleep lock
    /// while holding a queue lock, so the nesting cannot deadlock.
    fn has_queued_work(&self) -> bool {
        if !self.injector.lock().expect("injector poisoned").is_empty() {
            return true;
        }
        self.deques
            .iter()
            .any(|d| !d.lock().expect("worker deque poisoned").is_empty())
    }

    /// Producer-side wake: after pushing a job or filling a completion,
    /// notify every parked thread — but only if someone might be parked.
    /// Reading zero here is safe: the parker's `SeqCst` increment happens
    /// before its re-check, so a parker that missed this producer's count
    /// load will still observe the producer's push when it re-checks.
    fn notify_work(&self) {
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            drop(self.sleep.lock().expect("pool sleep lock poisoned"));
            self.work_ready.notify_all();
        }
    }

    /// Parks the calling thread until a producer notifies, unless
    /// `should_wake` (checked after the sleeper increment, under the
    /// sleep lock) already holds. Returns immediately in that case.
    fn park_unless(&self, should_wake: impl Fn() -> bool) {
        let guard = self.sleep.lock().expect("pool sleep lock poisoned");
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        // Re-check *after* the increment: any producer that read the
        // counter before it sees our increment... or we see its push.
        if should_wake() {
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let _guard = self
            .work_ready
            .wait(guard)
            .expect("pool sleep lock poisoned");
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Worker loop body: claim and run jobs; park event-driven when the
    /// queues are dry; exit on shutdown.
    fn run_worker(self: &Arc<Self>, index: usize) {
        CURRENT_POOL.with(|current| *current.borrow_mut() = Some(Arc::clone(self)));
        WORKER.with(|w| w.set(Some((Arc::as_ptr(self) as usize, index))));
        loop {
            if let Some(job) = self.find_work() {
                // Jobs capture their own panics into join slots / scope
                // latches; the catch here only shields the worker loop
                // from a hypothetical leak so the pool never loses a
                // thread.
                let _ = catch_unwind(AssertUnwindSafe(job));
                continue;
            }
            let guard = self.sleep.lock().expect("pool sleep lock poisoned");
            if *guard {
                return;
            }
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            if self.has_queued_work() {
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            let guard = self
                .work_ready
                .wait(guard)
                .expect("pool sleep lock poisoned");
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            if *guard {
                return;
            }
        }
    }

    fn begin_shutdown(&self) {
        *self.sleep.lock().expect("pool sleep lock poisoned") = true;
        self.work_ready.notify_all();
    }
}

thread_local! {
    /// The pool the current thread forks into: set for workers (their own
    /// pool) and inside [`ThreadPool::install`]; everyone else uses the
    /// global pool.
    static CURRENT_POOL: RefCell<Option<Arc<PoolShared>>> = const { RefCell::new(None) };

    /// For pool workers: (owning pool's `PoolShared` address, worker
    /// index). The address comparison is sound because a worker keeps its
    /// own pool alive for the lifetime of this entry.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

fn current_shared() -> Arc<PoolShared> {
    CURRENT_POOL
        .with(|current| current.borrow().clone())
        .unwrap_or_else(|| Arc::clone(&global_pool().shared))
}

fn global_pool() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        ThreadPoolBuilder::new()
            .build()
            .expect("spawn global pool workers")
    })
}

/// The global pool size: `BCOUNT_POOL_THREADS` when set and sane, else the
/// machine's available parallelism.
fn default_threads() -> usize {
    if let Ok(value) = std::env::var(POOL_THREADS_ENV) {
        if let Ok(n) = value.trim().parse::<usize>() {
            return n.clamp(1, 1024);
        }
    }
    thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The parallelism of the current pool (the global pool unless running on
/// a [`ThreadPool`]'s worker or inside [`ThreadPool::install`]). Callers
/// use it to pick chunk sizes.
pub fn current_num_threads() -> usize {
    current_shared().threads
}

// ---------------------------------------------------------------------------
// ThreadPool / ThreadPoolBuilder.
// ---------------------------------------------------------------------------

/// Error building a [`ThreadPool`] (worker spawn failure).
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    message: String,
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build failed: {}", self.message)
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builds [`ThreadPool`]s; mirrors the crates.io builder surface.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (global sizing rules).
    pub fn new() -> Self {
        ThreadPoolBuilder::default()
    }

    /// Sets the pool size. As on crates.io, `0` means "use the default"
    /// (`BCOUNT_POOL_THREADS` or the machine parallelism).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = Some(num_threads);
        self
    }

    /// Spawns the workers and returns the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = match self.num_threads {
            Some(0) | None => default_threads(),
            Some(n) => n.clamp(1, 1024),
        };
        let shared = Arc::new(PoolShared::new(threads));
        // The forking thread participates, so `threads - 1` workers give a
        // total parallelism of `threads`; a size-1 pool is fully inline.
        let mut workers = Vec::new();
        for index in 0..threads.saturating_sub(1) {
            let worker_shared = Arc::clone(&shared);
            match thread::Builder::new()
                .name(format!("bcount-pool-{index}"))
                .spawn(move || worker_shared.run_worker(index))
            {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    // Don't leak the workers that did start: they would
                    // otherwise park on `work_ready` forever, pinning
                    // their threads and the pool state for the process.
                    shared.begin_shutdown();
                    for handle in workers {
                        let _ = handle.join();
                    }
                    return Err(ThreadPoolBuildError {
                        message: e.to_string(),
                    });
                }
            }
        }
        Ok(ThreadPool { shared, workers })
    }
}

/// A persistent worker pool. The process-wide global pool is built lazily
/// on first [`join`]/[`scope`]; explicit pools (determinism tests, sizing
/// experiments) are built with [`ThreadPoolBuilder`] and entered with
/// [`ThreadPool::install`].
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Runs `op` with this pool as the current fork target: every [`join`]
    /// and [`scope`] reached from inside (including from this pool's
    /// workers) schedules onto this pool.
    ///
    /// Unlike crates.io rayon, `op` runs on the *calling* thread rather
    /// than being migrated onto a worker; callers in this workspace never
    /// observe the difference (transcripts are thread-placement
    /// independent). Nests freely: the previous pool is restored when
    /// `op` returns, including by unwinding.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        struct Restore(Option<Arc<PoolShared>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let previous = self.0.take();
                CURRENT_POOL.with(|current| *current.borrow_mut() = previous);
            }
        }
        let previous =
            CURRENT_POOL.with(|current| current.borrow_mut().replace(Arc::clone(&self.shared)));
        let _restore = Restore(previous);
        op()
    }

    /// This pool's total parallelism (workers + the participating caller).
    pub fn current_num_threads(&self) -> usize {
        self.shared.threads
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------------
// join.
// ---------------------------------------------------------------------------

/// Where a forked closure's outcome lands: the forking thread help-runs
/// queued jobs (or parks on the pool condvar) until the slot fills.
struct JoinSlot<R> {
    result: Mutex<Option<thread::Result<R>>>,
}

impl<R> JoinSlot<R> {
    fn new() -> Self {
        JoinSlot {
            result: Mutex::new(None),
        }
    }

    fn is_filled(&self) -> bool {
        self.result.lock().expect("join slot poisoned").is_some()
    }

    /// Fills the slot and wakes the pool's sleepers (the joiner may be
    /// parked on the pool-wide condvar).
    fn complete(&self, shared: &PoolShared, result: thread::Result<R>) {
        *self.result.lock().expect("join slot poisoned") = Some(result);
        shared.notify_work();
    }
}

/// Helps the pool until `slot` fills, then takes the result. The waiting
/// thread claims queued jobs instead of parking whenever work is
/// available — the property that makes nested joins deadlock-free — and
/// otherwise parks event-driven until a push or completion notifies.
fn wait_join<R>(shared: &PoolShared, slot: &JoinSlot<R>) -> thread::Result<R> {
    loop {
        if let Some(result) = slot.result.lock().expect("join slot poisoned").take() {
            return result;
        }
        if let Some(job) = shared.find_work() {
            job();
            continue;
        }
        // Park until a completion or new work arrives. The closure
        // re-checks both under the sleep lock, after the sleeper
        // increment, so a completion landing between the checks above and
        // the park cannot be missed.
        shared.park_unless(|| slot.is_filled() || shared.has_queued_work());
    }
}

/// Runs both closures, potentially in parallel, returning both results.
///
/// `oper_a` runs on the calling thread; `oper_b` goes to the current
/// pool — onto the caller's own deque when the caller is a pool worker,
/// through the global injector otherwise — where an idle worker (or this
/// thread, claiming it back after finishing `oper_a`) picks it up. On a
/// size-1 pool both simply run inline. Panics in either closure propagate
/// to the caller (after both have finished).
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let shared = current_shared();
    if shared.threads <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    let slot: Arc<JoinSlot<RB>> = Arc::new(JoinSlot::new());
    let completer = Arc::clone(&slot);
    let completer_shared = Arc::clone(&shared);
    let job: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
        completer.complete(&completer_shared, catch_unwind(AssertUnwindSafe(oper_b)));
    });
    // SAFETY: the erased job borrows this stack frame (through `oper_b`'s
    // captures). Every path out of this function first runs `wait_join`,
    // which returns only once the job has executed and filled `slot` — so
    // the borrows outlive the job even when `oper_a` panics.
    let job: Job = unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) };
    shared.schedule(job);
    let ra = match catch_unwind(AssertUnwindSafe(oper_a)) {
        Ok(ra) => ra,
        Err(panic) => {
            let _ = wait_join(&shared, &slot);
            resume_unwind(panic);
        }
    };
    match wait_join(&shared, &slot) {
        Ok(rb) => (ra, rb),
        Err(panic) => resume_unwind(panic),
    }
}

// ---------------------------------------------------------------------------
// scope.
// ---------------------------------------------------------------------------

struct ScopeLatch {
    pending: Mutex<usize>,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeLatch {
    fn new() -> Self {
        ScopeLatch {
            pending: Mutex::new(0),
            panic: Mutex::new(None),
        }
    }

    fn increment(&self) {
        *self.pending.lock().expect("scope latch poisoned") += 1;
    }

    /// Records a task completion; wakes the pool's sleepers when the
    /// count hits zero (the scope owner may be parked).
    fn finish(&self, shared: &PoolShared, panic: Option<Box<dyn Any + Send>>) {
        if let Some(panic) = panic {
            let mut slot = self.panic.lock().expect("scope latch poisoned");
            if slot.is_none() {
                *slot = Some(panic);
            }
        }
        let mut pending = self.pending.lock().expect("scope latch poisoned");
        *pending -= 1;
        let done = *pending == 0;
        drop(pending);
        if done {
            shared.notify_work();
        }
    }

    fn is_done(&self) -> bool {
        *self.pending.lock().expect("scope latch poisoned") == 0
    }
}

/// A fork scope handed to [`scope`]'s closure; spawned tasks may borrow
/// anything that outlives `'scope`.
pub struct Scope<'scope> {
    shared: Arc<PoolShared>,
    latch: Arc<ScopeLatch>,
    _marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns `body` onto the scope's pool. The task may itself spawn
    /// further tasks through the scope reference it receives.
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.latch.increment();
        if self.shared.threads <= 1 {
            let nested = Scope {
                shared: Arc::clone(&self.shared),
                latch: Arc::clone(&self.latch),
                _marker: PhantomData,
            };
            let result = catch_unwind(AssertUnwindSafe(|| body(&nested)));
            self.latch.finish(&self.shared, result.err());
            return;
        }
        let shared = Arc::clone(&self.shared);
        let latch = Arc::clone(&self.latch);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let nested = Scope {
                shared: Arc::clone(&shared),
                latch: Arc::clone(&latch),
                _marker: PhantomData,
            };
            let result = catch_unwind(AssertUnwindSafe(|| body(&nested)));
            latch.finish(&shared, result.err());
        });
        // SAFETY: `scope` does not return (not even by unwinding) until
        // the latch reports every spawned task finished, so the borrows
        // captured by `body` outlive the job's execution.
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
        self.shared.schedule(job);
    }
}

/// Creates a fork scope: tasks spawned inside may borrow from the caller's
/// stack, and `scope` returns only once every task has completed. The
/// first task panic (or a panic in `op` itself) propagates to the caller.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let fork_scope = Scope {
        shared: current_shared(),
        latch: Arc::new(ScopeLatch::new()),
        _marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| op(&fork_scope)));
    // Help-run queued jobs until every spawned task has finished; park
    // event-driven when the queues are dry (a task completion notifies).
    loop {
        if fork_scope.latch.is_done() {
            break;
        }
        if let Some(job) = fork_scope.shared.find_work() {
            job();
            continue;
        }
        fork_scope
            .shared
            .park_unless(|| fork_scope.latch.is_done() || fork_scope.shared.has_queued_work());
    }
    if let Some(panic) = fork_scope
        .latch
        .panic
        .lock()
        .expect("scope latch poisoned")
        .take()
    {
        resume_unwind(panic);
    }
    match result {
        Ok(value) => value,
        Err(panic) => resume_unwind(panic),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_runs_closures_concurrently_safe_with_borrows() {
        let data: Vec<u64> = (0..1000).collect();
        let (left, right) = data.split_at(500);
        let (sa, sb) = join(|| left.iter().sum::<u64>(), || right.iter().sum::<u64>());
        assert_eq!(sa + sb, data.iter().sum::<u64>());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate() {
        join(|| (), || panic!("boom"));
    }

    #[test]
    fn nested_joins_complete_on_small_pools() {
        // A fork tree deeper than the worker count exercises the
        // steal-back path: waiting threads must run queued jobs.
        fn sum(range: std::ops::Range<u64>) -> u64 {
            let len = range.end - range.start;
            if len <= 8 {
                return range.sum();
            }
            let mid = range.start + len / 2;
            let (a, b) = join(|| sum(range.start..mid), || sum(mid..range.end));
            a + b
        }
        for threads in [1, 2, 4] {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let total = pool.install(|| sum(0..10_000));
            assert_eq!(total, 10_000 * 9_999 / 2, "threads={threads}");
        }
    }

    #[test]
    fn install_routes_current_num_threads() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 3);
        // Back outside, the global sizing rules apply again.
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn nested_install_restores_outer_pool_on_unwind() {
        // `install` nests: entering a second pool inside the first and
        // panicking out of it must restore the *outer* pool as current,
        // not clear the slot or leak the inner pool.
        let outer = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let inner = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        outer.install(|| {
            assert_eq!(current_num_threads(), 3);
            let caught = catch_unwind(AssertUnwindSafe(|| {
                inner.install(|| {
                    assert_eq!(current_num_threads(), 2);
                    panic!("inner install boom");
                })
            }));
            assert!(caught.is_err(), "the inner panic must surface");
            assert_eq!(
                current_num_threads(),
                3,
                "unwinding out of the inner install must restore the outer pool"
            );
            // The restored pool is live, not a stale handle: fork on it.
            let (a, b) = join(|| 1, || 2);
            assert_eq!(a + b, 3);
        });
        // Back outside both installs, the global sizing rules apply.
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn workers_are_persistent_across_joins() {
        // Many sequential joins on one pool must not grow the thread
        // count: record the distinct worker thread ids seen.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let ids = Mutex::new(std::collections::HashSet::new());
        pool.install(|| {
            for _ in 0..100 {
                join(
                    || {
                        ids.lock().unwrap().insert(thread::current().id());
                    },
                    || {
                        ids.lock().unwrap().insert(thread::current().id());
                    },
                );
            }
        });
        // Caller + at most 3 workers.
        assert!(ids.lock().unwrap().len() <= 4);
    }

    #[test]
    fn workers_fork_onto_their_own_deques() {
        // A deep fork tree on a multi-worker pool: the nested joins that
        // workers execute push onto their own deques (LIFO) and the
        // result must still be exact — no job lost or run twice.
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        fn count(depth: u32) -> u64 {
            if depth == 0 {
                return 1;
            }
            let (a, b) = join(|| count(depth - 1), || count(depth - 1));
            a + b
        }
        let total = pool.install(|| count(10));
        assert_eq!(total, 1 << 10);
    }

    #[test]
    fn scope_waits_for_all_spawns() {
        let counter = AtomicUsize::new(0);
        for threads in [1, 4] {
            counter.store(0, Ordering::SeqCst);
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| {
                scope(|s| {
                    for _ in 0..32 {
                        s.spawn(|inner| {
                            counter.fetch_add(1, Ordering::SeqCst);
                            inner.spawn(|_| {
                                counter.fetch_add(1, Ordering::SeqCst);
                            });
                        });
                    }
                });
            });
            assert_eq!(counter.load(Ordering::SeqCst), 64, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "scope boom")]
    fn scope_propagates_task_panics() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| {
            scope(|s| {
                s.spawn(|_| panic!("scope boom"));
            });
        });
    }

    #[test]
    fn size_one_pool_is_fully_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let caller = thread::current().id();
        pool.install(|| {
            let (a, b) = join(|| thread::current().id(), || thread::current().id());
            assert_eq!(a, caller);
            assert_eq!(b, caller);
        });
    }
}

//! Offline vendored rayon subset.
//!
//! The build environment has no network access, so this crate provides the
//! fork-join primitive the simulator's `parallel` feature builds on:
//! [`join`] implemented over `std::thread::scope`. There is no work-stealing
//! pool — each `join` spawns one OS thread for its second closure — so
//! callers should recurse down to coarse chunks (the engine splits the node
//! range to roughly [`current_num_threads`] × a small factor leaves). The
//! surface is call-compatible with rayon's `join`, so swapping the real
//! crate back in (edit the `vendor/` path entries in the workspace
//! `Cargo.toml`) is a no-op for callers and buys back the pool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Runs both closures, potentially in parallel, returning both results.
///
/// `oper_a` runs on the calling thread; `oper_b` runs on a freshly spawned
/// scoped thread. Panics in either closure propagate to the caller.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let handle_b = scope.spawn(oper_b);
        let ra = oper_a();
        let rb = match handle_b.join() {
            Ok(rb) => rb,
            Err(panic) => std::panic::resume_unwind(panic),
        };
        (ra, rb)
    })
}

/// The parallelism the machine offers (used by callers to pick chunk
/// sizes; this vendored implementation has no thread pool to size).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_runs_closures_concurrently_safe_with_borrows() {
        let data: Vec<u64> = (0..1000).collect();
        let (left, right) = data.split_at(500);
        let (sa, sb) = join(|| left.iter().sum::<u64>(), || right.iter().sum::<u64>());
        assert_eq!(sa + sb, data.iter().sum::<u64>());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn panics_propagate() {
        join(|| (), || panic!("boom"));
    }
}

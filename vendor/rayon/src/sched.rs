//! The pool's scheduling data structures, factored out of the runtime so
//! the schedule-exploration harness (`tests/schedules.rs`) can drive the
//! *same* push/pop/steal code under a model scheduler that enumerates
//! thread interleavings.
//!
//! Both containers are plain sequential structures; the runtime wraps
//! each in its own [`std::sync::Mutex`], so every method here corresponds
//! to exactly one atomic critical section in the running pool — which is
//! what lets the harness treat each call as a single indivisible
//! transition of the model.

use std::collections::VecDeque;

/// A worker's private job deque.
///
/// The owning worker pushes and pops at the **bottom** (LIFO — its own
/// most recent fork, the cache-hot end), while thieves steal from the
/// **top** (FIFO — the oldest and typically largest-granularity work).
#[derive(Clone, Debug)]
pub struct WorkerDeque<J> {
    jobs: VecDeque<J>,
}

impl<J> WorkerDeque<J> {
    /// An empty deque.
    pub fn new() -> Self {
        WorkerDeque {
            jobs: VecDeque::new(),
        }
    }

    /// Owner push: bottom of the deque.
    pub fn push_bottom(&mut self, job: J) {
        self.jobs.push_back(job);
    }

    /// Owner pop: bottom of the deque (LIFO — the most recent push).
    pub fn pop_bottom(&mut self) -> Option<J> {
        self.jobs.pop_back()
    }

    /// Thief pop: top of the deque (FIFO — the least recent push).
    pub fn steal_top(&mut self) -> Option<J> {
        self.jobs.pop_front()
    }

    /// Whether the deque currently holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }
}

impl<J> Default for WorkerDeque<J> {
    fn default() -> Self {
        WorkerDeque::new()
    }
}

/// The global injector: the submission queue for threads that are *not*
/// workers of the pool (the forking caller on the outside, `scope` users
/// entering from other pools).
///
/// Workers drain it FIFO from the front; an external thread *waiting* on
/// its own fork steals back LIFO from the back — the job it pushed most
/// recently, which in the common case is its own fork or one of its
/// descendants.
#[derive(Clone, Debug)]
pub struct Injector<J> {
    jobs: VecDeque<J>,
}

impl<J> Injector<J> {
    /// An empty injector.
    pub fn new() -> Self {
        Injector {
            jobs: VecDeque::new(),
        }
    }

    /// External submission: back of the queue.
    pub fn push(&mut self, job: J) {
        self.jobs.push_back(job);
    }

    /// Worker-side FIFO steal: front of the queue (oldest submission).
    pub fn steal(&mut self) -> Option<J> {
        self.jobs.pop_front()
    }

    /// External waiter's LIFO steal-back: back of the queue (most recent
    /// submission).
    pub fn pop_back(&mut self) -> Option<J> {
        self.jobs.pop_back()
    }

    /// Whether the injector currently holds no jobs.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }
}

impl<J> Default for Injector<J> {
    fn default() -> Self {
        Injector::new()
    }
}

/// The order in which worker `me` visits the other deques of an
/// `n`-deque pool when stealing: round-robin starting just past itself,
/// wrapping, and skipping itself. Deterministic, and spreads thief
/// contention away from the low indices.
pub fn steal_order(me: usize, n: usize) -> impl Iterator<Item = usize> {
    (me.saturating_add(1)..n).chain(0..me.min(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_end_is_lifo_thief_end_is_fifo() {
        let mut d = WorkerDeque::new();
        d.push_bottom(1);
        d.push_bottom(2);
        d.push_bottom(3);
        assert_eq!(d.len(), 3);
        assert_eq!(d.pop_bottom(), Some(3), "owner sees its latest push");
        assert_eq!(d.steal_top(), Some(1), "thief sees the oldest push");
        assert_eq!(d.pop_bottom(), Some(2));
        assert!(d.is_empty());
        assert_eq!(d.pop_bottom(), None);
        assert_eq!(d.steal_top(), None);
    }

    #[test]
    fn injector_is_fifo_for_workers_lifo_for_steal_back() {
        let mut inj = Injector::new();
        inj.push("a");
        inj.push("b");
        inj.push("c");
        assert_eq!(inj.steal(), Some("a"), "workers drain oldest first");
        assert_eq!(inj.pop_back(), Some("c"), "waiter steals back its latest");
        assert_eq!(inj.len(), 1);
    }

    #[test]
    fn steal_order_visits_everyone_else_once() {
        let seen: Vec<usize> = steal_order(1, 4).collect();
        assert_eq!(seen, vec![2, 3, 0]);
        let seen: Vec<usize> = steal_order(0, 3).collect();
        assert_eq!(seen, vec![1, 2]);
        let seen: Vec<usize> = steal_order(2, 3).collect();
        assert_eq!(seen, vec![0, 1]);
        assert_eq!(steal_order(0, 1).count(), 0, "a lone worker has no victims");
    }
}

//! Schedule-exploration harness for the work-stealing pool: a model
//! checker in the loom spirit, sized for this crate.
//!
//! The model executes small binary fork trees over the pool's *real*
//! scheduling structures (`rayon::sched::{WorkerDeque, Injector,
//! steal_order}`) under a deterministic scheduler that owns all
//! nondeterminism: at every step it picks which virtual thread advances,
//! and a depth-first search enumerates every choice sequence up to a
//! budget. Each transition mirrors one mutex-guarded critical section of
//! the runtime — fork push, owner pop, injector/deque steal, the
//! two-phase park (sleeper increment, then the under-lock re-check that
//! either commits to sleep or aborts), and completion with its
//! producer-side wake — so the interleavings explored here are exactly
//! the schedules the OS could hand the running pool.
//!
//! Checked on **every** explored schedule:
//!
//! * **termination** — some thread can always advance until the root
//!   join completes (a schedule where all threads are parked while work
//!   or an unfilled slot remains is a lost wakeup, reported as a
//!   deadlock);
//! * **no lost jobs** — every leaf task executes exactly once and every
//!   queue drains;
//! * **panic propagation** — the root observes a panic iff some leaf
//!   panicked.
//!
//! The park model is deliberately two-phase. Collapsing the re-check
//! into the sleep transition would hide exactly the bug class the
//! runtime's protocol exists to prevent: a producer pushing between a
//! waiter's last look at the queues and its condvar wait. Here the
//! prepare-park and park-commit transitions are separate scheduler
//! choices, so every such producer interleaving is explored — if the
//! commit did not re-check (as `wait_join` once failed to), the DFS
//! finds the deadlock immediately.

use std::collections::BTreeMap;

use rayon::sched::{steal_order, Injector, WorkerDeque};

// ---------------------------------------------------------------------------
// The task tree.
// ---------------------------------------------------------------------------

/// A task: a leaf body (optionally panicking) or a two-way fork whose
/// right child is pushed to the queues, mirroring `rayon::join`.
#[derive(Clone, Copy, Debug)]
enum Node {
    Leaf { panics: bool },
    Fork { left: usize, right: usize },
}

#[derive(Clone, Debug, Default)]
struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn leaf(&mut self, panics: bool) -> usize {
        self.nodes.push(Node::Leaf { panics });
        self.nodes.len() - 1
    }

    fn fork(&mut self, left: usize, right: usize) -> usize {
        self.nodes.push(Node::Fork { left, right });
        self.nodes.len() - 1
    }

    fn any_leaf_panics(&self) -> bool {
        self.nodes
            .iter()
            .any(|n| matches!(n, Node::Leaf { panics: true }))
    }
}

// ---------------------------------------------------------------------------
// Virtual threads.
// ---------------------------------------------------------------------------

/// One continuation frame of a virtual thread's stack.
#[derive(Clone, Copy, Debug)]
enum Frame {
    /// Execute this task node next.
    Exec(usize),
    /// `rayon::join`'s wait: the left side's result is on the result
    /// stack; block (help-run / park) until `slots[node]` fills.
    JoinWait(usize),
    /// A claimed queue job finished executing: publish the result into
    /// `slots[node]` and notify.
    FillSlot(usize),
}

/// Where a thread stands in the two-phase park protocol.
#[derive(Clone, Copy, PartialEq, Debug)]
enum ParkState {
    /// Running normally.
    Active,
    /// Has incremented the sleeper count (prepare-park); its next step is
    /// the under-lock re-check that commits or aborts.
    Preparing,
    /// Committed to the condvar wait; only a producer wake resumes it.
    Parked,
}

#[derive(Clone, Debug)]
struct VThread {
    /// `Some(index)` for pool workers (index into the deques), `None`
    /// for the external thread that owns the root join.
    worker: Option<usize>,
    frames: Vec<Frame>,
    /// Results of completed sub-executions: `true` = panicked. Stack
    /// discipline mirrors the native call stack of the runtime.
    results: Vec<bool>,
    park: ParkState,
}

// ---------------------------------------------------------------------------
// The model state: real queues + virtual threads.
// ---------------------------------------------------------------------------

/// Jobs in the model queues are task-node ids; node id doubles as the
/// id of the join slot the job must fill.
#[derive(Clone, Debug)]
struct ModelState {
    injector: Injector<usize>,
    deques: Vec<WorkerDeque<usize>>,
    /// Join slots, indexed by node id (only fork right-children used):
    /// `Some(panicked)` once the forked job completed.
    slots: Vec<Option<bool>>,
    /// Per-node leaf execution counts — the no-lost-jobs ledger.
    executed: Vec<u32>,
    threads: Vec<VThread>,
    /// The model's sleeper counter (the runtime's `AtomicUsize`).
    sleepers: usize,
    /// Filled when the external thread finishes the root task.
    root_result: Option<bool>,
}

impl ModelState {
    fn new(tree: &Tree, root: usize, workers: usize) -> Self {
        let mut threads = vec![VThread {
            worker: None,
            frames: vec![Frame::Exec(root)],
            results: Vec::new(),
            park: ParkState::Active,
        }];
        for index in 0..workers {
            threads.push(VThread {
                worker: Some(index),
                frames: Vec::new(),
                results: Vec::new(),
                park: ParkState::Active,
            });
        }
        ModelState {
            injector: Injector::new(),
            deques: (0..workers).map(|_| WorkerDeque::new()).collect(),
            slots: vec![None; tree.nodes.len()],
            executed: vec![0; tree.nodes.len()],
            threads,
            sleepers: 0,
            root_result: None,
        }
    }

    fn done(&self) -> bool {
        self.root_result.is_some()
    }

    /// Threads the scheduler may advance: everyone not committed to the
    /// condvar (a parked thread only resumes via a producer wake).
    fn steppable(&self, t: usize) -> bool {
        !self.done() && self.threads[t].park != ParkState::Parked
    }

    fn has_queued_work(&self) -> bool {
        !self.injector.is_empty() || self.deques.iter().any(|d| !d.is_empty())
    }

    /// The runtime's `find_work` acquisition order, over the real
    /// structures: a worker pops its own bottom, drains the injector
    /// FIFO, then steals the other tops round-robin; the external thread
    /// steals back from the injector LIFO, then steals the tops.
    fn find_work(&mut self, t: usize) -> Option<(usize, &'static str)> {
        match self.threads[t].worker {
            Some(index) => {
                if let Some(job) = self.deques[index].pop_bottom() {
                    return Some((job, "pop-own"));
                }
                if let Some(job) = self.injector.steal() {
                    return Some((job, "steal-injector"));
                }
                for victim in steal_order(index, self.deques.len()) {
                    if let Some(job) = self.deques[victim].steal_top() {
                        return Some((job, "steal-deque"));
                    }
                }
                None
            }
            None => {
                if let Some(job) = self.injector.pop_back() {
                    return Some((job, "steal-back"));
                }
                for victim in 0..self.deques.len() {
                    if let Some(job) = self.deques[victim].steal_top() {
                        return Some((job, "steal-deque"));
                    }
                }
                None
            }
        }
    }

    /// Producer-side wake: notify-all resumes every committed sleeper;
    /// preparing threads are untouched — their own commit re-check will
    /// observe whatever this producer just published.
    fn notify(&mut self) -> bool {
        if self.sleepers == 0 {
            return false;
        }
        let mut woke = false;
        for th in &mut self.threads {
            if th.park == ParkState::Parked {
                th.park = ParkState::Active;
                self.sleepers -= 1;
                woke = true;
            }
        }
        woke
    }

    /// The wait condition a parker re-checks under the sleep lock before
    /// committing: queued work, or — for a joiner — its slot.
    fn wake_condition(&self, t: usize) -> bool {
        if self.has_queued_work() {
            return true;
        }
        match self.threads[t].frames.last() {
            Some(Frame::JoinWait(node)) => self.slots[*node].is_some(),
            _ => false,
        }
    }

    /// Advances thread `t` by one transition; returns its label for the
    /// coverage ledger. Each arm is one mutex-guarded critical section of
    /// the runtime.
    fn step(&mut self, tree: &Tree, t: usize) -> &'static str {
        match self.threads[t].park {
            ParkState::Parked => unreachable!("parked threads are not steppable"),
            ParkState::Preparing => {
                // park-commit: the under-lock re-check after the sleeper
                // increment. This is the transition whose absence caused
                // the wait_join missed-wakeup bug.
                if self.wake_condition(t) {
                    self.sleepers -= 1;
                    self.threads[t].park = ParkState::Active;
                    "park-abort"
                } else {
                    self.threads[t].park = ParkState::Parked;
                    "park-commit"
                }
            }
            ParkState::Active => self.step_active(tree, t),
        }
    }

    fn step_active(&mut self, tree: &Tree, t: usize) -> &'static str {
        match self.threads[t].frames.last().copied() {
            None => {
                if self.threads[t].worker.is_none() {
                    // The external thread's stack drained: the root task
                    // is fully joined.
                    let panicked = self.threads[t]
                        .results
                        .pop()
                        .expect("root result must be on the stack");
                    self.root_result = Some(panicked);
                    return "root-done";
                }
                // Worker main loop: claim a job or head for the condvar.
                if let Some((job, label)) = self.find_work(t) {
                    let th = &mut self.threads[t];
                    th.frames.push(Frame::FillSlot(job));
                    th.frames.push(Frame::Exec(job));
                    label
                } else {
                    self.sleepers += 1;
                    self.threads[t].park = ParkState::Preparing;
                    "prepare-park"
                }
            }
            Some(Frame::Exec(node)) => match tree.nodes[node] {
                Node::Leaf { panics } => {
                    self.executed[node] += 1;
                    let th = &mut self.threads[t];
                    th.frames.pop();
                    th.results.push(panics);
                    "leaf-complete"
                }
                Node::Fork { left, right } => {
                    // rayon::join: push the right child, continue into
                    // the left inline, wait for the right's slot after.
                    let th = &mut self.threads[t];
                    th.frames.pop();
                    th.frames.push(Frame::JoinWait(right));
                    th.frames.push(Frame::Exec(left));
                    match self.threads[t].worker {
                        Some(index) => self.deques[index].push_bottom(right),
                        None => self.injector.push(right),
                    }
                    self.notify();
                    "push"
                }
            },
            Some(Frame::JoinWait(node)) => {
                if let Some(right_panicked) = self.slots[node] {
                    let th = &mut self.threads[t];
                    let left_panicked = th.results.pop().expect("left result on the stack");
                    th.frames.pop();
                    th.results.push(left_panicked || right_panicked);
                    "join-complete"
                } else if let Some((job, label)) = self.find_work(t) {
                    let th = &mut self.threads[t];
                    th.frames.push(Frame::FillSlot(job));
                    th.frames.push(Frame::Exec(job));
                    label
                } else {
                    self.sleepers += 1;
                    self.threads[t].park = ParkState::Preparing;
                    "prepare-park"
                }
            }
            Some(Frame::FillSlot(node)) => {
                let th = &mut self.threads[t];
                let panicked = th.results.pop().expect("job result on the stack");
                th.frames.pop();
                self.slots[node] = Some(panicked);
                if self.notify() {
                    "complete-wake"
                } else {
                    "complete"
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// DFS exploration.
// ---------------------------------------------------------------------------

struct Explorer<'a> {
    tree: &'a Tree,
    config: &'static str,
    /// Stop after this many complete schedules (keeps the job bounded).
    cap: usize,
    schedules: usize,
    exhausted: bool,
    coverage: BTreeMap<&'static str, u64>,
}

impl<'a> Explorer<'a> {
    fn new(tree: &'a Tree, config: &'static str, cap: usize) -> Self {
        Explorer {
            tree,
            config,
            cap,
            schedules: 0,
            exhausted: true,
            coverage: BTreeMap::new(),
        }
    }

    fn run(&mut self, root: usize, workers: usize) {
        let state = ModelState::new(self.tree, root, workers);
        self.dfs(&state, 0);
    }

    fn dfs(&mut self, state: &ModelState, depth: usize) {
        if self.schedules >= self.cap {
            self.exhausted = false;
            return;
        }
        if state.done() {
            self.verify(state);
            self.schedules += 1;
            return;
        }
        let mut choices: Vec<usize> = (0..state.threads.len())
            .filter(|&t| state.steppable(t))
            .collect();
        assert!(
            !choices.is_empty(),
            "[{}] deadlock: root join incomplete but every thread is parked \
             (lost wakeup); state: {state:#?}",
            self.config,
        );
        // Rotate the choice order by depth: plain ascending order would
        // spend the whole budget on external-thread-first prefixes and
        // never reach the schedules where workers participate early.
        let rotation = depth % choices.len();
        choices.rotate_left(rotation);
        for t in choices {
            let mut next = state.clone();
            let label = next.step(self.tree, t);
            *self.coverage.entry(label).or_insert(0) += 1;
            self.dfs(&next, depth + 1);
            if self.schedules >= self.cap {
                self.exhausted = false;
                return;
            }
        }
    }

    /// Per-schedule assertions: exactly-once execution, drained queues,
    /// correct panic propagation, and a consistent sleeper ledger.
    fn verify(&self, state: &ModelState) {
        for (node, count) in state.executed.iter().enumerate() {
            if matches!(self.tree.nodes[node], Node::Leaf { .. }) {
                assert_eq!(
                    *count, 1,
                    "[{}] leaf {node} executed {count} times (lost or duplicated job)",
                    self.config
                );
            }
        }
        assert!(
            state.injector.is_empty() && state.deques.iter().all(|d| d.is_empty()),
            "[{}] queues must drain by the time the root join completes",
            self.config
        );
        assert_eq!(
            state.root_result,
            Some(self.tree.any_leaf_panics()),
            "[{}] the root must observe a panic iff some leaf panicked",
            self.config
        );
        let limbo = state
            .threads
            .iter()
            .filter(|th| th.park != ParkState::Active)
            .count();
        assert_eq!(
            state.sleepers, limbo,
            "[{}] sleeper counter out of sync with parked threads",
            self.config
        );
    }
}

/// Builds the tree for a config, runs the DFS, and returns the explorer
/// with its schedule count and coverage ledger.
fn explore(
    config: &'static str,
    workers: usize,
    cap: usize,
    build: impl FnOnce(&mut Tree) -> usize,
) -> Explorer<'static> {
    // The tree lives for the test; leaking it keeps Explorer simple.
    let mut tree = Tree::default();
    let root = build(&mut tree);
    let tree: &'static Tree = Box::leak(Box::new(tree));
    let mut explorer = Explorer::new(tree, config, cap);
    explorer.run(root, workers);
    explorer
}

// ---------------------------------------------------------------------------
// Tests.
// ---------------------------------------------------------------------------

/// One fork, one worker: small enough to exhaust the entire schedule
/// space, so *every* possible interleaving is verified, not a sample.
#[test]
fn minimal_fork_is_exhaustively_correct() {
    let ex = explore("fork(leaf,leaf) x1worker", 1, usize::MAX, |t| {
        let l = t.leaf(false);
        let r = t.leaf(false);
        t.fork(l, r)
    });
    assert!(ex.exhausted, "the minimal config must be fully explored");
    assert!(ex.schedules > 0);
    // The defining races all occur even in the minimal config.
    for required in ["push", "park-commit", "prepare-park"] {
        assert!(
            ex.coverage.contains_key(required),
            "minimal config never hit `{required}`: {:?}",
            ex.coverage
        );
    }
}

/// A panicking leaf: the root must observe the panic on every schedule,
/// including those where a worker steals and completes the panicking job
/// while the external thread is parked.
#[test]
fn panics_propagate_on_every_schedule() {
    for (config, left_panics, right_panics) in [
        ("panic-left x1worker", true, false),
        ("panic-right x1worker", false, true),
        ("panic-both x1worker", true, true),
    ] {
        let ex = explore(config, 1, usize::MAX, |t| {
            let l = t.leaf(left_panics);
            let r = t.leaf(right_panics);
            t.fork(l, r)
        });
        assert!(ex.exhausted, "[{config}] must be fully explored");
        assert!(ex.schedules > 0, "[{config}]");
    }
}

/// Nested forks across worker counts: the full matrix. Asserts the
/// acceptance-criteria floor — at least 1000 distinct interleavings in
/// total — and that the coverage ledger shows every transition family
/// (push, every steal flavour, both park phases plus the abort, and
/// completions with producer wakes) actually raced.
#[test]
fn schedule_matrix_covers_push_steal_park_complete() {
    let mut total_schedules = 0usize;
    let mut coverage: BTreeMap<&'static str, u64> = BTreeMap::new();

    // workers=0: the external thread does everything through the
    // injector steal-back path (no deques at all). The right child is
    // itself a fork, so the steal-back claims a job that pushes again.
    let ex = explore("nested x0workers", 0, 100_000, |t| {
        let a = t.leaf(false);
        let b = t.leaf(false);
        let inner = t.fork(a, b);
        let c = t.leaf(false);
        t.fork(c, inner)
    });
    assert!(ex.exhausted, "x0workers is serial and must exhaust");
    total_schedules += ex.schedules;
    for (k, v) in &ex.coverage {
        *coverage.entry(k).or_insert(0) += v;
    }

    // workers=1: every external/worker race over one deque + injector.
    // The pushed (right) child is a fork: a worker that steals it pushes
    // the grandchild onto its *own* deque — the pop-own / steal-deque
    // races live here.
    let ex = explore("nested x1worker", 1, 100_000, |t| {
        let a = t.leaf(false);
        let b = t.leaf(false);
        let inner = t.fork(a, b);
        let c = t.leaf(false);
        t.fork(c, inner)
    });
    total_schedules += ex.schedules;
    for (k, v) in &ex.coverage {
        *coverage.entry(k).or_insert(0) += v;
    }

    // workers=2: three-way races; a worker that steals a fork pushes the
    // grandchild onto its *own* deque, exercising pop-own vs steal-deque.
    let ex = explore("deep x2workers", 2, 150_000, |t| {
        let a = t.leaf(false);
        let b = t.leaf(false);
        let left = t.fork(a, b);
        let c = t.leaf(false);
        let d = t.leaf(false);
        let right = t.fork(c, d);
        t.fork(left, right)
    });
    total_schedules += ex.schedules;
    for (k, v) in &ex.coverage {
        *coverage.entry(k).or_insert(0) += v;
    }

    // workers=2 with a panicking leaf under contention, behind the
    // pushed fork so the panic frequently surfaces on a worker.
    let ex = explore("deep-panic x2workers", 2, 100_000, |t| {
        let a = t.leaf(false);
        let b = t.leaf(true);
        let inner = t.fork(a, b);
        let c = t.leaf(false);
        t.fork(c, inner)
    });
    total_schedules += ex.schedules;
    for (k, v) in &ex.coverage {
        *coverage.entry(k).or_insert(0) += v;
    }

    assert!(
        total_schedules >= 1000,
        "need >= 1000 distinct interleavings, explored {total_schedules}"
    );
    for required in [
        "push",
        "pop-own",
        "steal-injector",
        "steal-deque",
        "steal-back",
        "prepare-park",
        "park-commit",
        "park-abort",
        "leaf-complete",
        "complete",
        "complete-wake",
        "join-complete",
        "root-done",
    ] {
        assert!(
            coverage.contains_key(required),
            "transition `{required}` never explored; coverage: {coverage:?}"
        );
    }
    println!("schedules: {total_schedules} distinct interleavings; coverage: {coverage:?}");
}

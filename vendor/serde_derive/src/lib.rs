//! Offline vendored no-op `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The build environment has no network access, so real `serde_derive`
//! (and its `syn`/`quote` stack) is unavailable. The workspace only *tags*
//! types as serializable — nothing serializes yet — so these derives expand
//! to nothing; the vendored `serde` crate's blanket trait impls make the
//! corresponding bounds hold for every type. When real serialization
//! arrives, swap the `vendor/` path entries in the workspace `Cargo.toml`
//! for crates.io versions and everything keeps compiling.

use proc_macro::TokenStream;

/// No-op stand-in for serde's `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for serde's `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

//! Sequence sampling: Fisher–Yates shuffling and uniform element choice.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Uniformly shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Returns a uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(rng.gen_range(0..self.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngCore;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_handles_empty_and_full() {
        let mut rng = Counter(5);
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut rng), None);
        let v = [1, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }
}

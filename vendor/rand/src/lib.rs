//! Offline vendored subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API.
//!
//! The build environment for this repository has no network access, so the
//! workspace vendors the narrow slice of `rand` it actually uses: the
//! [`RngCore`]/[`Rng`] traits, [`SeedableRng`] with the SplitMix64-based
//! `seed_from_u64`, the [`distributions::Standard`]/uniform-range sampling
//! used by `gen`/`gen_range`/`gen_bool`, and [`seq::SliceRandom`]
//! (Fisher–Yates `shuffle` and `choose`).
//!
//! Determinism is the only contract the workspace relies on (every
//! experiment seeds its own [`SeedableRng`]); this implementation is *not*
//! guaranteed to be stream-compatible with crates.io `rand`, and the repo's
//! reference transcripts are defined by this vendored implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributions;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: uniform raw output.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut iter = dest.chunks_exact_mut(8);
        for chunk in &mut iter {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = iter.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type supported by the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        distributions::unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-width seed accepted by [`SeedableRng::from_seed`].
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it to a full seed with
    /// SplitMix64 (the same scheme crates.io `rand` documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut rng = Counter(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

//! The sampling machinery behind [`Rng::gen`](crate::Rng::gen) and
//! [`Rng::gen_range`](crate::Rng::gen_range).

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" uniform distribution for primitive types: full-width
/// uniform integers, `[0, 1)` uniform floats, fair booleans.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

/// Uniform `f64` in `[0, 1)` with 53 random mantissa bits.
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `f32` in `[0, 1)` with 24 random mantissa bits.
pub(crate) fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$via() as $t
            }
        }
    )*};
}

standard_int! {
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        unit_f64(rng)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        unit_f32(rng)
    }
}

/// A range that [`Rng::gen_range`](crate::Rng::gen_range) can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounding (Lemire); the slight bias is far
                // below anything the experiments can observe.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (start..end + 1).sample_single(rng)
            }
        }
    )*};
}

uniform_int_range!(u8, u16, u32, u64, usize);

macro_rules! uniform_signed_range {
    ($($t:ty : $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let offset = (0..span as u64).sample_single(rng);
                self.start.wrapping_add(offset as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                if start == <$t>::MIN && end == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (end as $u).wrapping_sub(start as $u) as u64 + 1;
                let offset = (0..span).sample_single(rng);
                start.wrapping_add(offset as $t)
            }
        }
    )*};
}

uniform_signed_range!(i8: u8, i16: u16, i32: u32, i64: u64, isize: usize);

macro_rules! uniform_float_range {
    ($($t:ty => $unit:ident),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let sample = self.start + $unit(rng) * (self.end - self.start);
                // Guard the open upper bound against rounding.
                if sample >= self.end {
                    self.start
                } else {
                    sample
                }
            }
        }
    )*};
}

uniform_float_range!(f64 => unit_f64, f32 => unit_f32);
